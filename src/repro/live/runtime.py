"""Live runtime orchestration: send, reflect, and loopback sessions.

Everything here composes the lower layers — :mod:`repro.live.wire`
datagrams, the :mod:`repro.live.sender` schedule walker, the
:mod:`repro.live.reflector` state machine — into the three entry points
the CLI exposes:

* :func:`run_live_send` — drive a measurement against a remote reflector
  and return a :class:`LiveRunResult` whose ``result`` is a plain
  :class:`~repro.core.badabing.BadabingResult`, built by the *same*
  :func:`~repro.core.badabing.assemble_result` path as simulator runs;
* :func:`run_live_reflector` — serve sessions until stopped or idle;
* :func:`run_live_loopback` — both ends in one process over 127.0.0.1,
  with the deterministic :mod:`repro.live.impair` shim standing in for a
  lossy network (how CI exercises the runtime without real loss).

While a session runs, a :class:`StreamingMonitor` folds the collected
probe prefix into the §5.4 :class:`~repro.core.validation.SequentialValidator`
exactly as the simulator's convergence telemetry does, publishes the
running F̂ as the ``live.frequency`` series, and (optionally) streams
finalized records into an incremental :class:`~repro.io.traces.TraceWriter`
so a crash loses at most the unfinalized tail.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass
from math import floor
from typing import Dict, List, Optional, Union

from repro.config import BadabingConfig, MarkingConfig
from repro.core.badabing import BadabingResult, assemble_result
from repro.core.clock import Clock, MonotonicClock, rebase_probe_owds
from repro.core.estimators import frequency_from_counter
from repro.core.records import ExperimentOutcome, ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.core.validation import SequentialValidator
from repro.errors import EstimationError, LiveSessionError
from repro.experiments.runner import RunBudget
from repro.io.traces import TraceWriter
from repro.live.fleet import (
    WATCHDOG_INTERVAL,
    FleetPolicy,
    FleetReflectorProtocol,
    start_fleet_reflector,
)
from repro.live.impair import build_impairment
from repro.live.reflector import ReflectorProtocol, start_reflector
from repro.live.sender import LiveSender, SenderStats, open_sender
from repro.live.session import (
    config_from_spec,
    make_session_id,
    schedule_from_spec,
    spec_for,
)
from repro.live.wire import SessionSpec
from repro.net.faults import FaultProfile
from repro.net.simulator import _stable_seed
from repro.obs.manifest import RunManifest, config_digest, summarize_snapshot
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracing import Tracer, trace_span

#: Extra settle time past tau before a slot's marking is considered final
#: in the streaming view (covers echo latency + scheduler jitter).
FINALIZE_MARGIN = 0.25


class StreamingMonitor:
    """Incremental §5.4 feed + trace persistence over a growing probe log.

    ``observe(records, elapsed)`` is called by the sender with the full
    joined record list so far. Experiments whose last slot ended more
    than ``tau + margin`` seconds ago are *finalized*: their outcomes are
    folded into the sequential validator (in start-slot order, exactly
    once), the running F̂ is appended to the ``live.frequency`` series,
    and the finalized records are flushed to the trace writer. The final
    authoritative result is still recomputed from scratch by
    :func:`~repro.core.badabing.assemble_result` — this monitor is the
    live view, not a second estimator.
    """

    def __init__(
        self,
        schedule: GeometricSchedule,
        config: BadabingConfig,
        registry: Optional[MetricsRegistry] = None,
        writer: Optional[TraceWriter] = None,
        margin: float = FINALIZE_MARGIN,
    ):
        from repro.core.marking import CongestionMarker

        self.schedule = schedule
        self.config = config
        self.registry = registry if registry is not None else NullRegistry()
        self.writer = writer
        self.margin = margin
        self.marker = CongestionMarker(config.marking)
        self.validator = SequentialValidator()
        self._experiments = sorted(
            schedule.experiments, key=lambda experiment: experiment.start_slot
        )
        self._next_experiment = 0
        self.skipped_experiments = 0
        self._written_slots: set = set()
        self._series = (
            self.registry.series("live.frequency", role="sender")
            if self.registry.enabled
            else None
        )

    @property
    def fed_experiments(self) -> int:
        return self.validator.n_experiments

    def observe(self, records: List[ProbeRecord], elapsed: float) -> None:
        """Fold the finalized prefix of ``records`` into the live view."""
        horizon = elapsed - self.config.marking.tau - self.margin
        if horizon <= 0:
            return
        finalize_slot = floor(horizon / self.config.probe.slot)
        self._advance(records, finalize_slot)

    def finish(self, records: List[ProbeRecord]) -> None:
        """Session over: everything collected is final."""
        self._advance(records, self.schedule.n_slots)

    def _advance(self, records: List[ProbeRecord], finalize_slot: int) -> None:
        # Rebase + mark the whole prefix each time: the offset estimate and
        # the OWD_max history both sharpen as the log grows, so late calls
        # re-derive earlier slots' states — but outcomes already fed to the
        # validator are never re-fed (streaming estimates are a view, and
        # the end-of-run result recomputes everything authoritatively).
        states: Dict[int, bool] = self.marker.mark(
            rebase_probe_owds(records)
        ).slot_states
        while self._next_experiment < len(self._experiments):
            experiment = self._experiments[self._next_experiment]
            if experiment.start_slot + experiment.length > finalize_slot:
                break
            bits = [states.get(slot) for slot in experiment.slots]
            if any(bit is None for bit in bits):
                # Slots the sender never reached (budget stop) or whose
                # probes are gone entirely; coverage accounting at the end
                # owns these, the streaming view just skips them.
                self.skipped_experiments += 1
            else:
                self.validator.add(
                    ExperimentOutcome(
                        experiment.start_slot, tuple(int(bit) for bit in bits)
                    )
                )
            self._next_experiment += 1
        counter = self.validator.pattern_counter
        if self._series is not None and counter.get("M"):
            last = records[-1].send_time if records else 0.0
            self._series.append(last, frequency_from_counter(counter))
        if self.writer is not None:
            for record in records:
                if record.slot < finalize_slot and record.slot not in self._written_slots:
                    self._written_slots.add(record.slot)
                    self.writer.write_probe(record)


@dataclass
class ReflectorSummary:
    """Reflector-side accounting carried back from a loopback run."""

    probes_received: int = 0
    probes_echoed: int = 0
    impaired_drops: int = 0
    duplicate_arrivals: int = 0
    wire_errors: int = 0
    unknown_session: int = 0
    rate_limited: int = 0

    @classmethod
    def from_protocol(cls, protocol: ReflectorProtocol) -> "ReflectorSummary":
        # The *_total properties fold in sessions already retired to the
        # LRU, so the summary survives fleet-mode session turnover.
        return cls(
            probes_received=protocol.probes_received_total,
            probes_echoed=protocol.probes_echoed_total,
            impaired_drops=protocol.impaired_drops_total,
            duplicate_arrivals=protocol.duplicate_arrivals_total,
            wire_errors=protocol.wire_errors,
            unknown_session=protocol.unknown_session,
            rate_limited=protocol.rate_limited_total,
        )


@dataclass
class LiveRunResult:
    """One live sender session's full output."""

    #: The standard result object — audit/report/render consumers see the
    #: exact same shape a simulator run produces.
    result: BadabingResult
    spec: SessionSpec
    schedule: GeometricSchedule
    session_id: int
    stats: SenderStats
    #: Present for loopback runs (both ends in-process).
    reflector: Optional[ReflectorSummary] = None
    #: Reflector-side one-way estimate for the same session (loopback
    #: cross-check; None when the reflector saw too little to estimate).
    receiver_result: Optional[BadabingResult] = None

    @property
    def frequency(self) -> float:
        return self.result.frequency

    @property
    def degraded(self) -> bool:
        """True when emission stopped early (budget, Ctrl-C, restart NAK)."""
        return bool(self.stats.stopped)

    @property
    def manifest(self) -> Optional[RunManifest]:
        return self.result.manifest


def _live_manifest(
    seed: int,
    live_config: BadabingConfig,
    stats: SenderStats,
    registry: MetricsRegistry,
) -> RunManifest:
    """Provenance record mirroring the simulator runner's manifests.

    ``sim_seconds`` carries the *measurement* seconds (the live analogue
    of virtual time) and ``events_processed`` the probe packets sent, so
    manifest consumers see comparable shapes across backends.
    """
    from repro import __version__

    return RunManifest(
        tool="badabing-live",
        seed=seed,
        config_digest=config_digest(live_config),
        package_version=__version__,
        sim_seconds=stats.elapsed_seconds,
        wall_seconds=stats.elapsed_seconds,
        events_processed=stats.packets_sent,
        metrics=summarize_snapshot(registry.snapshot()) if registry.enabled else {},
    )


def _install_sigint(loop: asyncio.AbstractEventLoop, stop_event: asyncio.Event) -> bool:
    """Route Ctrl-C into a graceful stop; False where signals are unavailable."""
    try:
        loop.add_signal_handler(signal.SIGINT, stop_event.set)
        return True
    except (NotImplementedError, ValueError, RuntimeError):
        return False


def _remove_sigint(loop: asyncio.AbstractEventLoop) -> None:
    try:
        loop.remove_signal_handler(signal.SIGINT)
    except (NotImplementedError, ValueError, RuntimeError):  # pragma: no cover
        pass


async def run_live_send(
    host: str,
    port: int,
    config: Optional[BadabingConfig] = None,
    seed: int = 1,
    marking: Optional[MarkingConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    budget: Optional[RunBudget] = None,
    stop_event: Optional[asyncio.Event] = None,
    trace_path: Optional[str] = None,
    clock: Optional[Clock] = None,
    handle_sigint: bool = False,
) -> LiveRunResult:
    """One full live measurement against a reflector at ``host:port``.

    Raises :class:`~repro.errors.LiveSessionError` when the reflector
    never answers the handshake, and
    :class:`~repro.errors.EstimationError` when the session ended before
    producing a single usable experiment. A stop (Ctrl-C with
    ``handle_sigint``, the ``stop_event``, or an exhausted
    :class:`~repro.experiments.runner.RunBudget`) degrades gracefully:
    outstanding echoes are drained and the partial record stream is
    estimated with reduced coverage.
    """
    config = config if config is not None else BadabingConfig()
    clock = clock if clock is not None else MonotonicClock()
    registry = registry if registry is not None else NullRegistry()
    stop_event = stop_event if stop_event is not None else asyncio.Event()
    spec = spec_for(config, seed)
    schedule = schedule_from_spec(spec)
    live_config = config_from_spec(
        spec, marking if marking is not None else config.marking
    )
    session_id = make_session_id(seed)
    writer = (
        TraceWriter(
            trace_path,
            live_config.probe.slot,
            live_config.n_slots,
            live_config.p,
            list(schedule.experiments),
            metadata={
                "tool": "badabing-live",
                "seed": seed,
                "session": session_id,
                "probe_size": spec.probe_size,
                "clock_domain": "monotonic",
            },
        )
        if trace_path
        else None
    )
    monitor = StreamingMonitor(schedule, live_config, registry, writer=writer)
    transport, protocol = await open_sender(host, port, session_id, clock=clock)
    loop = asyncio.get_running_loop()
    sigint_installed = handle_sigint and _install_sigint(loop, stop_event)
    try:
        sender = LiveSender(
            transport,
            protocol,
            spec,
            schedule,
            clock=clock,
            registry=registry,
            budget=budget,
            stop_event=stop_event,
            on_progress=monitor.observe,
        )
        with trace_span(
            tracer, "live.session", host=host, port=port, n_slots=spec.n_slots
        ):
            records = await sender.run()
        monitor.finish(records)
    finally:
        if sigint_installed:
            _remove_sigint(loop)
        if writer is not None:
            writer.close()
        transport.close()
    stats = sender.stats
    probes = rebase_probe_owds(records)
    with trace_span(tracer, "live.assemble", n_probes=len(probes)):
        result = assemble_result(
            schedule,
            probes,
            live_config,
            duplicate_arrivals=stats.duplicate_echoes,
            tracer=tracer,
        )
    result.manifest = _live_manifest(seed, live_config, stats, registry)
    return LiveRunResult(
        result=result,
        spec=spec,
        schedule=schedule,
        session_id=session_id,
        stats=stats,
    )


async def run_live_reflector(
    host: str = "127.0.0.1",
    port: int = 5005,
    faults: Union[str, FaultProfile, None] = None,
    seed: int = 1,
    registry: Optional[MetricsRegistry] = None,
    mode: str = "echo",
    stop_event: Optional[asyncio.Event] = None,
    policy: Optional[FleetPolicy] = None,
    marking: Optional[MarkingConfig] = None,
    serve_sessions: Optional[int] = None,
    exit_idle: Optional[float] = None,
    watchdog_interval: float = WATCHDOG_INTERVAL,
    handle_sigint: bool = False,
    exporter=None,
) -> FleetReflectorProtocol:
    """Serve fleet reflector sessions until stopped, idle, or session-budget.

    Always runs the multi-tenant :class:`FleetReflectorProtocol` with its
    eviction/retirement watchdog, so a long-lived reflector holds bounded
    state no matter how many sessions pass through; ``policy`` adds
    admission control and per-tenant rate caps on top (default: none).

    ``exit_idle`` ends service once at least one session finished, none
    are still active, and no datagram has arrived for that many seconds;
    ``serve_sessions`` ends it once that many sessions finished. With
    neither, only the stop event (or Ctrl-C with ``handle_sigint``).

    ``exporter`` (a :class:`~repro.obs.export.TelemetryExporter` over
    ``registry``) is started while serving and stopped — final snapshot
    flushed — on every exit path, Ctrl-C included, so operators can watch
    ``/metrics``/``/healthz``/``/sessions`` for the reflector's lifetime.
    """
    registry = registry if registry is not None else NullRegistry()
    stop_event = stop_event if stop_event is not None else asyncio.Event()
    impair_seed = _stable_seed(seed, "live-impair")
    impairment_for = (
        (lambda _session_id: build_impairment(faults, impair_seed))
        if faults is not None
        else None
    )
    transport, protocol, watchdog_task = await start_fleet_reflector(
        host,
        port,
        policy=policy,
        watchdog_interval=watchdog_interval,
        registry=registry,
        impairment_for=impairment_for,
        marking=marking,
        mode=mode,
    )
    loop = asyncio.get_running_loop()
    sigint_installed = handle_sigint and _install_sigint(loop, stop_event)
    if exporter is not None:
        await exporter.start()
    try:
        while not stop_event.is_set():
            await asyncio.sleep(0.2)
            if serve_sessions is not None and protocol.sessions_finished >= serve_sessions:
                break
            if (
                exit_idle is not None
                and protocol.sessions_finished
                and all(s.finished for s in protocol.sessions.values())
            ):
                idle = (protocol.clock.now_ns() - protocol.last_activity_ns) / 1e9
                if idle >= exit_idle:
                    break
    finally:
        if sigint_installed:
            _remove_sigint(loop)
        watchdog_task.cancel()
        try:
            await watchdog_task
        except asyncio.CancelledError:
            pass
        transport.close()
        if exporter is not None:
            await exporter.stop()
    return protocol


async def run_live_loopback(
    config: Optional[BadabingConfig] = None,
    seed: int = 1,
    faults: Union[str, FaultProfile, None] = None,
    marking: Optional[MarkingConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    budget: Optional[RunBudget] = None,
    trace_path: Optional[str] = None,
    stop_event: Optional[asyncio.Event] = None,
    handle_sigint: bool = False,
) -> LiveRunResult:
    """Both ends in one process over 127.0.0.1 (CI's live smoke test).

    The reflector gets the deterministic impairment shim for ``faults``
    (seeded from ``seed``, so the realized drop pattern is replayable),
    the sender runs a normal session against it, and the result carries
    both the sender-side estimate and the reflector's own one-way
    cross-check.
    """
    registry = registry if registry is not None else NullRegistry()
    impair_seed = _stable_seed(seed, "live-impair")
    reflector_transport, reflector = await start_reflector(
        "127.0.0.1",
        0,
        registry=registry,
        impairment_for=lambda _session_id: build_impairment(faults, impair_seed),
        mode="echo",
    )
    port = reflector_transport.get_extra_info("sockname")[1]
    try:
        run = await run_live_send(
            "127.0.0.1",
            port,
            config=config,
            seed=seed,
            marking=marking,
            registry=registry,
            tracer=tracer,
            budget=budget,
            stop_event=stop_event,
            trace_path=trace_path,
            handle_sigint=handle_sigint,
        )
    finally:
        reflector_transport.close()
    run.reflector = ReflectorSummary.from_protocol(reflector)
    if marking is None and config is not None:
        marking = config.marking
    try:
        run.receiver_result = reflector.result_for(run.session_id, marking)
    except (EstimationError, LiveSessionError):
        run.receiver_result = None
    return run


def live_send(*args, **kwargs) -> LiveRunResult:
    """Synchronous wrapper around :func:`run_live_send`."""
    return asyncio.run(run_live_send(*args, **kwargs))


def live_reflect(*args, **kwargs) -> ReflectorProtocol:
    """Synchronous wrapper around :func:`run_live_reflector`."""
    return asyncio.run(run_live_reflector(*args, **kwargs))


def live_loopback(*args, **kwargs) -> LiveRunResult:
    """Synchronous wrapper around :func:`run_live_loopback`."""
    return asyncio.run(run_live_loopback(*args, **kwargs))
