"""Deterministic receiver-side impairment for live loopback runs.

A loopback run (`repro live loopback`) sends real UDP datagrams over
127.0.0.1, where the kernel essentially never loses anything — useless
for exercising the estimators. This shim sits *inside* the reflector's
datagram handler and decides, per probe packet, whether to pretend the
packet was lost on the forward path, reusing the declarative
:class:`~repro.net.faults.FaultProfile` vocabulary (uncorrelated drops,
Gilbert bursts, collector outage windows).

Unlike the simulator's :class:`~repro.net.faults.FaultInjector`, the
uncorrelated Bernoulli decision here is a *pure function* of
``(seed, slot, packet index)`` — a keyed hash, not a consumed RNG
stream — so it is independent of arrival order (UDP may reorder even on
loopback) and tests can replay the exact realized drop pattern to
compute the true loss rate the estimator should recover.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional, Union

# repro.net's simulator/obs/analysis import cycle only resolves when
# repro.core initializes first; entering through repro.net.faults directly
# (as `import repro.live` otherwise would) hits the partially-initialized
# simulator module.
import repro.core  # noqa: F401

from repro.net.faults import FaultProfile, FaultStats, resolve_fault_profile

_HASH_DENOM = float(1 << 64)


def bernoulli_drop(seed: int, slot: int, index: int, probability: float) -> bool:
    """Order-independent seeded drop decision for one probe packet.

    Maps ``blake2b(seed:slot:index)`` onto [0, 1) and compares against
    ``probability``. Stable across processes and Python versions
    (independent of ``PYTHONHASHSEED``), so a test that knows the seed
    can enumerate exactly which packets a run dropped.
    """
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    digest = hashlib.blake2b(
        f"{seed}:{slot}:{index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _HASH_DENOM < probability


@dataclass
class ReceiverImpairment:
    """Per-session forward-path loss emulation at the reflector.

    ``drop(slot, index, elapsed)`` returns True when the probe packet
    should be treated as lost. ``elapsed`` is seconds since the session
    started, checked against the profile's (relative) outage windows.
    Gilbert bursts consume a seeded RNG stream keyed per *probe* (slot),
    so the chain state is arrival-order independent at probe granularity.
    """

    profile: FaultProfile
    seed: int
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        self._burst_state: Dict[int, bool] = {}
        self._gilbert_rng = Random(self.seed ^ 0x9E3779B97F4A7C15)
        self._last_gilbert_slot: Optional[int] = None

    def drop(self, slot: int, index: int, elapsed: float) -> bool:
        profile = self.profile
        if any(start <= elapsed < end for start, end in profile.outage_windows):
            self.stats.dropped_outage += 1
            return True
        if profile.gilbert_enabled and self._gilbert_drop(slot):
            self.stats.dropped_burst += 1
            return True
        if bernoulli_drop(self.seed, slot, index, profile.drop_probability):
            self.stats.dropped_random += 1
            return True
        self.stats.delivered += 1
        return False

    def _gilbert_drop(self, slot: int) -> bool:
        """Advance the two-state chain once per new slot, then sample."""
        in_burst = self._burst_state.get(slot)
        if in_burst is None:
            if self._last_gilbert_slot is None:
                in_burst = False
            else:
                in_burst = self._burst_state[self._last_gilbert_slot]
                if in_burst:
                    if self._gilbert_rng.random() < self.profile.gilbert_g:
                        in_burst = False
                elif self._gilbert_rng.random() < self.profile.gilbert_b:
                    in_burst = True
            self._burst_state[slot] = in_burst
            self._last_gilbert_slot = slot
        return bool(in_burst) and self._gilbert_rng.random() < self.profile.gilbert_drop


def build_impairment(
    faults: Optional[Union[str, FaultProfile]], seed: int
) -> Optional[ReceiverImpairment]:
    """Resolve a profile name/object into a shim; None when no-op.

    Link-level impairments the reflector cannot emulate receiver-side
    (reordering delay, duplication lag, flapping) are ignored here — only
    the loss processes and outage windows apply. Real reordering and
    duplication still happen naturally on the UDP path.
    """
    profile = resolve_fault_profile(faults)
    if profile is None:
        return None
    lossy = FaultProfile(
        drop_probability=profile.drop_probability,
        gilbert_b=profile.gilbert_b,
        gilbert_g=profile.gilbert_g,
        gilbert_drop=profile.gilbert_drop,
        outage_windows=profile.outage_windows,
    )
    if lossy.is_noop:
        return None
    return ReceiverImpairment(profile=lossy, seed=seed)
