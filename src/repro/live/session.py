"""Session plumbing shared by the live sender and reflector.

A live session is parameterized entirely by a
:class:`~repro.live.wire.SessionSpec`: the HELLO handshake ships it to
the reflector, and *both* ends derive their view of the measurement from
the spec — the sender walks :func:`schedule_from_spec`'s schedule, the
reflector regenerates the identical schedule from the same
``schedule_seed``, and both assemble results against
:func:`config_from_spec`. Quantization (``p`` to parts-per-million, slot
width to nanoseconds) happens once, in :func:`spec_for`, *before* either
side builds anything, so the two ends can never disagree on the plan.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.core.records import ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.errors import LiveSessionError
from repro.live.wire import PPM, SessionSpec
from repro.net.simulator import _stable_seed

#: (slot, packet-index) key into the send/receive logs — matches the
#: simulator tool's log shape, so the join below mirrors
#: :meth:`repro.core.badabing.BadabingTool.probe_records`.
SeqKey = Tuple[int, int]


def make_session_id(seed: int) -> int:
    """Deterministic 64-bit session id for a seeded run."""
    return _stable_seed(seed, "live-session")


def spec_for(config: BadabingConfig, seed: int) -> SessionSpec:
    """Quantize a :class:`BadabingConfig` into the wire-carried spec."""
    if config.p > 1.0:
        # Never clamp silently: p is a per-slot probability, and a config
        # claiming p=1.5 is a bug at the call site, not a request for 1.0.
        raise LiveSessionError(
            f"p={config.p} is not a probability (> 1); refusing to clamp"
        )
    p_ppm = int(round(config.p * PPM))
    if p_ppm <= 0:
        raise LiveSessionError(
            f"p={config.p} quantizes to zero ppm; too small for the wire"
        )
    return SessionSpec(
        schedule_seed=_stable_seed(seed, "live-schedule"),
        n_slots=config.n_slots,
        slot_ns=int(round(config.probe.slot * 1e9)),
        p_ppm=min(p_ppm, PPM),
        packets_per_probe=config.probe.packets_per_probe,
        improved=config.improved,
        probe_size=config.probe.probe_size,
    ).validate()


def schedule_from_spec(spec: SessionSpec) -> GeometricSchedule:
    """The experiment plan both ends regenerate from the spec."""
    return GeometricSchedule(
        spec.p,
        spec.n_slots,
        random.Random(spec.schedule_seed),
        improved=spec.improved,
    )


def config_from_spec(
    spec: SessionSpec, marking: Optional[MarkingConfig] = None
) -> BadabingConfig:
    """Rebuild the (quantized) config the shared estimator path expects."""
    return BadabingConfig(
        probe=ProbeConfig(
            slot=spec.slot_seconds,
            probe_size=spec.probe_size,
            packets_per_probe=spec.packets_per_probe,
        ),
        marking=marking if marking is not None else MarkingConfig(),
        p=spec.p,
        n_slots=spec.n_slots,
        improved=spec.improved,
    )


def probe_records_from_logs(
    schedule: GeometricSchedule,
    packets_per_probe: int,
    send_ns: Dict[SeqKey, int],
    recv_ns: Dict[SeqKey, int],
    epoch_ns: int,
) -> List[ProbeRecord]:
    """Join send/receive nanosecond logs into per-slot probe records.

    The live twin of the simulator tool's log join: ``send_ns`` holds the
    sender-clock stamp of every emitted packet, ``recv_ns`` the
    receiver-clock stamp of every arrival (first copy per sequence key —
    dedup happens where the log is written). Record send times are
    expressed in seconds since ``epoch_ns`` (the session epoch on the
    *send-log* clock); one-way delays are ``recv − send`` and therefore
    live in a cross-clock domain when the two logs come from different
    hosts — pass the result through
    :func:`repro.core.clock.rebase_probe_owds` before marking in that
    case. Slots the sender never reached (budget stop, Ctrl-C) are simply
    absent, degrading coverage instead of faking loss.
    """
    records: List[ProbeRecord] = []
    for slot in schedule.probe_slots:
        first = send_ns.get((slot, 0))
        if first is None:
            continue
        send_time = (first - epoch_ns) / 1e9
        owds: List[float] = []
        owd_before_loss: Optional[float] = None
        last_owd: Optional[float] = None
        saw_loss = False
        incomplete = False
        for index in range(packets_per_probe):
            stamp = send_ns.get((slot, index))
            if stamp is None:
                # Train cut short mid-emission (stop raced the train).
                incomplete = True
                break
            arrival = recv_ns.get((slot, index))
            if arrival is None:
                if not saw_loss:
                    saw_loss = True
                    owd_before_loss = last_owd
            else:
                owd = (arrival - stamp) / 1e9
                owds.append(owd)
                last_owd = owd
        if incomplete:
            continue
        records.append(
            ProbeRecord(
                slot=slot,
                send_time=send_time,
                n_packets=packets_per_probe,
                owds=tuple(owds),
                owd_before_loss=owd_before_loss,
            )
        )
    records.sort(key=lambda record: record.send_time)
    return records


def probe_records_from_arrivals(
    schedule: GeometricSchedule,
    packets_per_probe: int,
    send_ns: Dict[SeqKey, int],
    recv_ns: Dict[SeqKey, int],
    slot_ns: int,
    last_slot: Optional[int] = None,
) -> List[ProbeRecord]:
    """Receiver-side join: reconstruct probe records from arrivals alone.

    A sink-mode reflector has no authoritative send log — it only knows
    the stamps of packets that *arrived*. Here absence means **loss**,
    the inverse of :func:`probe_records_from_logs`'s "not sent yet": a
    scheduled slot with some arrivals yields a record whose missing
    indices are losses, and a scheduled slot with *no* arrivals at all
    yields an all-lost record — but only up to ``last_slot``, beyond
    which silence is read as "the sender never got there" (budget stop,
    crash) and degrades coverage instead of fabricating loss. Derive
    ``last_slot`` from the FIN datagram's sender stamp when one arrived;
    the default is the highest slot with any arrival.

    Send times are seconds since the sender's (estimated) session epoch,
    recovered from observed first-packet stamps: each arrived ``(slot,
    0)`` packet pins ``epoch ≈ stamp − slot × slot_ns`` up to launch
    jitter; the minimum over observations is used so fully-lost slots
    get nominal send times in the same domain.
    """
    epoch_candidates = [
        stamp - slot * slot_ns
        for (slot, index), stamp in send_ns.items()
        if index == 0
    ]
    if not epoch_candidates:
        return []
    epoch_ns = min(epoch_candidates)
    if last_slot is None:
        last_slot = max(slot for slot, _index in recv_ns)
    records: List[ProbeRecord] = []
    for slot in schedule.probe_slots:
        if slot > last_slot:
            continue
        owds: List[float] = []
        owd_before_loss: Optional[float] = None
        last_owd: Optional[float] = None
        saw_loss = False
        for index in range(packets_per_probe):
            stamp = send_ns.get((slot, index))
            arrival = recv_ns.get((slot, index))
            if arrival is None or stamp is None:
                if not saw_loss:
                    saw_loss = True
                    owd_before_loss = last_owd
            else:
                owd = (arrival - stamp) / 1e9
                owds.append(owd)
                last_owd = owd
        first = send_ns.get((slot, 0))
        send_time = (
            (first - epoch_ns) / 1e9 if first is not None else slot * slot_ns / 1e9
        )
        records.append(
            ProbeRecord(
                slot=slot,
                send_time=send_time,
                n_packets=packets_per_probe,
                owds=tuple(owds),
                owd_before_loss=owd_before_loss,
            )
        )
    records.sort(key=lambda record: record.send_time)
    return records
