"""Multi-tenant fleet layer: admission control, eviction, backpressure.

The plain :class:`~repro.live.reflector.ReflectorProtocol` trusts its
peers: every HELLO registers state, every probe is logged, and sessions
live forever. That is fine for one loopback sender and hostile reality
for a reflector meant to serve thousands of concurrent tenants. This
module wraps the protocol in the overload armor a fleet-scale deployment
needs, while keeping per-tenant robustness state lean (a token bucket is
two floats and an integer; an evicted session collapses to one LRU slot):

* **Admission control** — :class:`FleetPolicy` caps concurrent sessions
  and the aggregate nominal probe rate; a HELLO past either cap is
  answered with a ``BUSY`` datagram carrying a ``RETRY_AFTER`` hint
  instead of silently growing state (``live.admission_rejected``).
* **Idle eviction** — :meth:`FleetReflectorProtocol.sweep` (driven by the
  :func:`watchdog` task) expires sessions with no traffic past a deadline
  derived from their own spec (slot width × slots + grace), emitting a
  partial receiver-side :class:`~repro.core.badabing.BadabingResult`
  whose :class:`~repro.core.records.CoverageReport` accounts for the
  missing tail rather than dropping the tenant's data (``live.evicted``).
* **Backpressure** — a per-tenant :class:`TokenBucket` sized from the
  session's *declared* schedule caps what one misbehaving sender can
  push; excess probes are dropped before they touch the arrival log
  (``live.rate_limited``), so they cannot starve other tenants.
* **Retirement** — finished sessions linger briefly for FIN retries,
  have their receiver-side result harvested, and are then retired to the
  bounded recent-session LRU (see
  :meth:`~repro.live.reflector.ReflectorProtocol.retire_session`).

:func:`run_fleet_loopback` composes all of it with N concurrent in-process
senders over 127.0.0.1 — the many-session soak CI runs — and returns one
:class:`~repro.experiments.runner.RunOutcome` per session, mirroring the
sweep engine's structured-failure shape.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import BadabingConfig, MarkingConfig
from repro.core.badabing import BadabingResult
from repro.errors import ConfigurationError, EstimationError, LiveSessionError
from repro.experiments.runner import RunBudget, RunOutcome
from repro.live import wire
from repro.live.reflector import ReflectorProtocol, ReflectorSession
from repro.net.faults import FaultProfile
from repro.obs.metrics import MetricsRegistry

#: Default watchdog tick (seconds): fine enough to evict promptly, coarse
#: enough to cost nothing against thousands of sessions.
WATCHDOG_INTERVAL = 0.25


@dataclass
class TokenBucket:
    """Lean per-tenant rate limiter: two floats and a timestamp.

    Refill is computed lazily from the elapsed time at each ``allow``
    call (the aioquic idiom: no timers, no queues — threshold math on
    arrival), so holding one per session scales to thousands of tenants.
    """

    rate: float
    burst: float
    tokens: float = 0.0
    last_ns: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0 or self.burst <= 0.0:
            raise ConfigurationError(
                f"token bucket needs positive rate/burst, got "
                f"rate={self.rate}, burst={self.burst}"
            )
        self.tokens = self.burst

    def allow(self, now_ns: int, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; refill lazily first."""
        if now_ns > self.last_ns:
            self.tokens = min(
                self.burst, self.tokens + (now_ns - self.last_ns) * 1e-9 * self.rate
            )
            self.last_ns = now_ns
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass(frozen=True)
class FleetPolicy:
    """Overload limits for a multi-tenant reflector.

    Every limit defaults to "off" so a policy-less fleet reflector
    behaves exactly like the plain protocol (plus retirement, which only
    bounds memory).

    Attributes
    ----------
    max_sessions:
        Cap on *concurrent active* sessions; HELLOs past it get ``BUSY``.
    max_aggregate_pps:
        Cap on the summed nominal probe rate (packets/second, computed
        from each admitted spec as ``p × packets_per_probe / slot``) —
        protects the reflector's downlink, not just its memory.
    rate_cap_pps:
        Per-tenant token-bucket rate. When unset, each tenant's bucket is
        sized from its own declared schedule (nominal rate × headroom),
        so only senders violating their *own* HELLO get squeezed.
    rate_headroom:
        Multiplier over the declared nominal rate for spec-derived
        buckets (schedule geometry is bursty; 4× passes honest senders).
    rate_burst_seconds:
        Bucket depth, in seconds of the allowed rate.
    idle_timeout:
        Per-session idle eviction deadline override (seconds). Unset,
        each session's deadline derives from its own spec:
        ``slot × n_slots + idle_grace``.
    idle_grace:
        Grace added to the spec-derived deadline (handshake + drain slop).
    retry_after:
        The RETRY_AFTER hint (seconds) carried in ``BUSY`` rejections.
    fin_linger:
        How long a finished session stays active (answering FIN retries,
        counting stragglers as duplicates) before retirement.
    max_reports:
        Bound on retained per-session :class:`SessionReport` objects.
    """

    max_sessions: Optional[int] = None
    max_aggregate_pps: Optional[float] = None
    rate_cap_pps: Optional[float] = None
    rate_headroom: float = 4.0
    rate_burst_seconds: float = 0.5
    idle_timeout: Optional[float] = None
    idle_grace: float = 2.0
    retry_after: float = 1.0
    fin_linger: float = 1.0
    max_reports: int = 1024

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        for name in ("max_aggregate_pps", "rate_cap_pps", "idle_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        for name in ("rate_headroom", "rate_burst_seconds", "retry_after"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.idle_grace < 0 or self.fin_linger < 0 or self.max_reports < 1:
            raise ConfigurationError(
                "idle_grace/fin_linger must be >= 0 and max_reports >= 1"
            )


def nominal_pps(spec: wire.SessionSpec) -> float:
    """Expected probe packets/second a spec's schedule emits."""
    return spec.p * spec.packets_per_probe / spec.slot_seconds


def idle_deadline_seconds(spec: wire.SessionSpec, policy: FleetPolicy) -> float:
    """Idle-eviction deadline for one session, from its own spec."""
    if policy.idle_timeout is not None:
        return policy.idle_timeout
    return spec.duration_seconds + policy.idle_grace


@dataclass
class SessionReport:
    """What one retired session left behind (bounded-queue dashboard feed)."""

    session_id: int
    peer: Tuple[str, int]
    reason: str  #: ``"finished"`` or ``"evicted"``
    probes_received: int
    duplicate_arrivals: int
    rate_limited: int
    #: Receiver-side estimate (partial for evicted sessions: its coverage
    #: report accounts for the unobserved tail). None when the session
    #: produced no usable experiment at all.
    result: Optional[BadabingResult] = None

    @property
    def evicted(self) -> bool:
        return self.reason == "evicted"


class FleetReflectorProtocol(ReflectorProtocol):
    """Reflector state machine with fleet policy enforcement.

    Accepts every :class:`~repro.live.reflector.ReflectorProtocol` kwarg
    plus ``policy`` and ``marking`` (the marking config used when
    harvesting receiver-side results at retirement; ``harvest_results``
    disables that work entirely for pure-echo deployments).
    """

    def __init__(
        self,
        policy: Optional[FleetPolicy] = None,
        marking: Optional[MarkingConfig] = None,
        harvest_results: bool = True,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.policy = policy if policy is not None else FleetPolicy()
        self.marking = marking
        self.harvest_results = harvest_results
        self.admission_rejected = 0
        self.rejected_sessions_full = 0
        self.rejected_rate_full = 0
        self.evicted = 0
        self.admitted_pps = 0.0
        self._buckets: Dict[int, TokenBucket] = {}
        self._session_pps: Dict[int, float] = {}
        self.reports: Deque[SessionReport] = deque(maxlen=self.policy.max_reports)

    # ------------------------------------------------------------- admission
    def _admit(
        self, header: wire.ProbeHeader, spec: wire.SessionSpec, addr: Tuple[str, int]
    ) -> bool:
        policy = self.policy
        if (
            policy.max_sessions is not None
            and len(self.sessions) >= policy.max_sessions
        ):
            self._reject(header.session, wire.BUSY_SESSIONS, addr)
            return False
        if (
            policy.max_aggregate_pps is not None
            and self.admitted_pps + nominal_pps(spec) > policy.max_aggregate_pps
        ):
            self._reject(header.session, wire.BUSY_RATE, addr)
            return False
        return True

    def _reject(self, session_id: int, reason: int, addr: Tuple[str, int]) -> None:
        self.admission_rejected += 1
        if reason == wire.BUSY_SESSIONS:
            self.rejected_sessions_full += 1
        else:
            self.rejected_rate_full += 1
        self._send(
            wire.encode_busy(
                session_id, self.policy.retry_after, reason, self.clock.now_ns()
            ),
            addr,
        )

    def _register(
        self, header: wire.ProbeHeader, spec: wire.SessionSpec, addr: Tuple[str, int]
    ) -> ReflectorSession:
        session = super()._register(header, spec, addr)
        pps = nominal_pps(spec)
        self._session_pps[session.session_id] = pps
        self.admitted_pps += pps
        allowed = (
            self.policy.rate_cap_pps
            if self.policy.rate_cap_pps is not None
            else pps * self.policy.rate_headroom
        )
        self._buckets[session.session_id] = TokenBucket(
            rate=allowed,
            burst=max(
                float(spec.packets_per_probe),
                allowed * self.policy.rate_burst_seconds,
            ),
            last_ns=self.clock.now_ns(),
        )
        return session

    # ----------------------------------------------------------- backpressure
    def _consume_rate_token(self, session: ReflectorSession, now_ns: int) -> bool:
        bucket = self._buckets.get(session.session_id)
        if bucket is None:
            return True
        return bucket.allow(now_ns)

    # ------------------------------------------------------------- retirement
    def retire_session(self, session_id: int) -> Optional[ReflectorSession]:
        session = super().retire_session(session_id)
        if session is not None:
            self.admitted_pps -= self._session_pps.pop(session_id, 0.0)
            if self.admitted_pps < 1e-9:
                self.admitted_pps = 0.0
            self._buckets.pop(session_id, None)
        return session

    def _harvest(self, session: ReflectorSession) -> Optional[BadabingResult]:
        if not self.harvest_results:
            return None
        try:
            return self.result_for(session.session_id, self.marking)
        except (EstimationError, LiveSessionError):
            # Too little data for a single usable experiment — the report
            # still records the raw arrival accounting.
            return None

    def _retire_with_report(self, session: ReflectorSession, reason: str) -> SessionReport:
        report = SessionReport(
            session_id=session.session_id,
            peer=session.peer,
            reason=reason,
            probes_received=session.probes_received,
            duplicate_arrivals=session.duplicate_arrivals,
            rate_limited=session.rate_limited,
            result=self._harvest(session),
        )
        self.retire_session(session.session_id)
        self.reports.append(report)
        return report

    def evict(self, session_id: int) -> Optional[SessionReport]:
        """Expire one session now, keeping its partial result."""
        session = self.sessions.get(session_id)
        if session is None:
            return None
        self.evicted += 1
        return self._retire_with_report(session, "evicted")

    def sweep(self, now_ns: Optional[int] = None) -> List[SessionReport]:
        """One watchdog pass: retire finished sessions, evict stalled ones.

        Synchronous and side-effect-complete so tests can drive it with a
        fake clock; :func:`watchdog` just calls it on an interval.
        """
        if now_ns is None:
            now_ns = self.clock.now_ns()
        linger_ns = int(self.policy.fin_linger * 1e9)
        retired: List[SessionReport] = []
        for session in list(self.sessions.values()):
            if session.finished:
                if (
                    session.fin_seen_ns is not None
                    and now_ns - session.fin_seen_ns >= linger_ns
                ):
                    retired.append(self._retire_with_report(session, "finished"))
                continue
            deadline_ns = int(idle_deadline_seconds(session.spec, self.policy) * 1e9)
            last_seen = session.last_seen_ns or session.started_ns
            if now_ns - last_seen > deadline_ns:
                self.evicted += 1
                retired.append(self._retire_with_report(session, "evicted"))
        return retired

    # ---------------------------------------------------------------- metrics
    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        super()._collect_metrics(registry)
        registry.counter("live.admission_rejected", role="reflector").value = (
            self.admission_rejected
        )
        registry.counter(
            "live.admission_rejected_sessions", role="reflector"
        ).value = self.rejected_sessions_full
        registry.counter("live.admission_rejected_rate", role="reflector").value = (
            self.rejected_rate_full
        )
        registry.counter("live.evicted", role="reflector").value = self.evicted
        # Point-in-time reading; see Gauge.sample for the digest contract.
        registry.gauge("live.admitted_pps", role="reflector").sample(self.admitted_pps)


async def watchdog(
    protocol: FleetReflectorProtocol,
    stop_event: Optional[asyncio.Event] = None,
    interval: float = WATCHDOG_INTERVAL,
) -> None:
    """Periodic :meth:`FleetReflectorProtocol.sweep` until cancelled/stopped."""
    while stop_event is None or not stop_event.is_set():
        await asyncio.sleep(interval)
        protocol.sweep()


async def start_fleet_reflector(
    host: str = "127.0.0.1",
    port: int = 0,
    policy: Optional[FleetPolicy] = None,
    watchdog_interval: float = WATCHDOG_INTERVAL,
    **protocol_kwargs,
) -> Tuple[asyncio.DatagramTransport, FleetReflectorProtocol, asyncio.Task]:
    """Bind a fleet reflector and its watchdog task.

    Returns ``(transport, protocol, watchdog_task)``; cancel the task and
    close the transport to shut down.
    """
    loop = asyncio.get_running_loop()
    try:
        transport, protocol = await loop.create_datagram_endpoint(
            lambda: FleetReflectorProtocol(policy=policy, **protocol_kwargs),
            local_addr=(host, port),
        )
    except OSError as exc:
        raise LiveSessionError(
            f"cannot bind fleet reflector on {host}:{port}: {exc}"
        ) from exc
    task = loop.create_task(watchdog(protocol, interval=watchdog_interval))
    return transport, protocol, task


@dataclass
class FleetLoopbackResult:
    """Everything a many-session loopback soak produced."""

    outcomes: List[RunOutcome]
    #: Retirement reports harvested by the watchdog (bounded).
    reports: List[SessionReport]
    admission_rejected: int
    evicted: int
    rate_limited: int
    wire_errors: int
    unknown_session: int
    sessions_admitted: int
    sessions_active: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def degraded(self) -> List[RunOutcome]:
        """Sessions that completed but stopped early (partial estimates)."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.ok and outcome.result is not None and outcome.result.stats.stopped
        ]


async def run_fleet_loopback(
    configs: Union[BadabingConfig, Sequence[BadabingConfig]],
    n_sessions: Optional[int] = None,
    base_seed: int = 1,
    policy: Optional[FleetPolicy] = None,
    faults: Union[str, FaultProfile, None] = None,
    marking: Optional[MarkingConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer=None,
    budget: Optional[RunBudget] = None,
    stagger_seconds: float = 0.0,
    harvest_results: bool = False,
    exporter=None,
) -> FleetLoopbackResult:
    """N concurrent sender sessions against one in-process fleet reflector.

    Session ``i`` runs seed ``base_seed + i`` with config ``configs[i]``
    (a single config is broadcast), so each session's impairment pattern
    and estimate are byte-identical to a serial single-session loopback
    of the same (config, seed) — the fleet invariant CI asserts. Sender
    failures (e.g. admission retries exhausted) become structured failed
    :class:`~repro.experiments.runner.RunOutcome` rows, never exceptions.

    ``exporter`` (a :class:`~repro.obs.export.TelemetryExporter` over
    ``registry``) is started once the reflector is listening and stopped
    — with a final flushed snapshot — on every exit path, including
    budget exhaustion and Ctrl-C drains, so a degraded soak still leaves
    a valid export stream. Per-session shards stream as labeled rollups
    as each session's registry merges in.
    """
    from repro.live.impair import build_impairment
    from repro.live.runtime import run_live_send
    from repro.live.session import make_session_id
    from repro.net.simulator import _stable_seed

    if isinstance(configs, BadabingConfig):
        if n_sessions is None:
            raise ConfigurationError(
                "broadcasting one config requires n_sessions"
            )
        configs = [configs] * n_sessions
    else:
        configs = list(configs)
        if n_sessions is not None and n_sessions != len(configs):
            raise ConfigurationError(
                f"n_sessions={n_sessions} does not match {len(configs)} configs"
            )
    seeds = [base_seed + i for i in range(len(configs))]
    seed_by_session = {make_session_id(seed): seed for seed in seeds}

    def impairment_for(session_id: int):
        seed = seed_by_session.get(session_id)
        if seed is None or faults is None:
            return None
        return build_impairment(faults, _stable_seed(seed, "live-impair"))

    transport, protocol, watchdog_task = await start_fleet_reflector(
        "127.0.0.1",
        0,
        policy=policy,
        registry=registry,
        impairment_for=impairment_for,
        marking=marking,
        harvest_results=harvest_results,
        mode="echo",
    )
    port = transport.get_extra_info("sockname")[1]
    merged = registry if registry is not None else None

    async def one_session(index: int) -> RunOutcome:
        label = f"session[{index}]"
        if stagger_seconds > 0.0:
            await asyncio.sleep(index * stagger_seconds)
        shard = MetricsRegistry() if merged is not None and merged.enabled else None
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            run = await run_live_send(
                "127.0.0.1",
                port,
                config=configs[index],
                seed=seeds[index],
                marking=marking,
                registry=shard,
                tracer=tracer,
                budget=budget,
            )
        except (LiveSessionError, EstimationError) as exc:
            return RunOutcome(
                label=label,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                attempts=1,
                seeds=(seeds[index],),
                elapsed_seconds=loop.time() - started,
            )
        finally:
            if shard is not None and merged is not None:
                merged.merge(
                    shard.detach_collectors(), series_labels={"session": label}
                )
        return RunOutcome(
            label=label,
            ok=True,
            result=run,
            attempts=1,
            seeds=(seeds[index],),
            elapsed_seconds=loop.time() - started,
        )

    if exporter is not None:
        await exporter.start()
    try:
        outcomes = list(
            await asyncio.gather(*(one_session(i) for i in range(len(configs))))
        )
        # Let the watchdog retire finished sessions (bounded-linger wait),
        # so the soak's final state reflects steady-state fleet behavior.
        linger = (
            protocol.policy.fin_linger + 2 * WATCHDOG_INTERVAL
            if protocol.policy.fin_linger <= 2.0
            else 0.0
        )
        if linger:
            await asyncio.sleep(linger)
    finally:
        watchdog_task.cancel()
        try:
            await watchdog_task
        except asyncio.CancelledError:
            pass
        transport.close()
        if exporter is not None:
            await exporter.stop()
    return FleetLoopbackResult(
        outcomes=outcomes,
        reports=list(protocol.reports),
        admission_rejected=protocol.admission_rejected,
        evicted=protocol.evicted,
        rate_limited=protocol.rate_limited_total,
        wire_errors=protocol.wire_errors,
        unknown_session=protocol.unknown_session,
        sessions_admitted=protocol.sessions_admitted,
        sessions_active=len(protocol.sessions),
    )


def fleet_loopback(*args, **kwargs) -> FleetLoopbackResult:
    """Synchronous wrapper around :func:`run_fleet_loopback`."""
    return asyncio.run(run_fleet_loopback(*args, **kwargs))
