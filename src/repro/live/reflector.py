"""Asyncio UDP reflector: the far end of a live BADABING session.

The reflector is deliberately dumb and crash-proof: it answers HELLO
with HELLO_ACK, stamps and echoes probe packets (``echo`` mode) or
silently absorbs them (``sink`` mode), answers FIN with FIN_ACK, and
counts everything it could not parse instead of dying on it. All of its
per-session state — the regenerated schedule and the arrival log — also
lets it reconstruct :class:`~repro.core.records.ProbeRecord` streams
receiver-side, so a sink-mode reflector can estimate one-way loss
without any return path (see :meth:`ReflectorProtocol.probe_records`).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MarkingConfig
from repro.core.badabing import BadabingResult, assemble_result
from repro.core.clock import Clock, MonotonicClock, rebase_probe_owds
from repro.core.records import ProbeRecord
from repro.errors import LiveSessionError, WireFormatError
from repro.live import wire
from repro.live.impair import ReceiverImpairment
from repro.live.session import (
    SeqKey,
    config_from_spec,
    probe_records_from_arrivals,
    schedule_from_spec,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry

#: Reflector modes: ``echo`` sends the stamped header back (round-trip
#: collection at the sender), ``sink`` only records (one-way collection
#: at the reflector).
MODES = ("echo", "sink")

#: How many retired session ids the reflector remembers (bounded LRU).
#: Late duplicate probes from a retired session count as duplicates, not
#: ``live.unknown_session`` — and the memory cost is one dict slot per id.
RECENT_SESSIONS = 4096

#: Ceiling on NAK datagrams per second across all peers. NAKs make a
#: restarted reflector *visible* to senders mid-session, but an
#: unthrottled NAK-per-probe would turn the reflector into a packet
#: amplifier for spoofed traffic.
NAK_PER_SECOND = 20


@dataclass
class ReflectorSession:
    """Everything the reflector keeps per live session."""

    session_id: int
    peer: Tuple[str, int]
    spec: wire.SessionSpec
    #: Reflector clock at HELLO receipt — anchors outage-window elapsed time.
    started_ns: int
    #: Sender clock at HELLO emission — epoch for receiver-side send times.
    sender_epoch_ns: int
    impairment: Optional[ReceiverImpairment] = None
    #: (slot, index) -> sender-clock send stamp (from the probe header).
    send_ns: Dict[SeqKey, int] = field(default_factory=dict)
    #: (slot, index) -> reflector-clock arrival stamp (first copy wins).
    recv_ns: Dict[SeqKey, int] = field(default_factory=dict)
    probes_received: int = 0
    probes_echoed: int = 0
    duplicate_arrivals: int = 0
    impaired_drops: int = 0
    #: Probe datagrams refused by the per-tenant token bucket (fleet layer).
    rate_limited: int = 0
    finished: bool = False
    #: Sender clock at FIN emission — bounds the receiver-side join (slots
    #: past it were never probed, so their silence is not loss).
    fin_send_ns: Optional[int] = None
    #: Reflector clock at the last datagram from this session — drives the
    #: fleet watchdog's idle-eviction deadline.
    last_seen_ns: int = 0
    #: Reflector clock when FIN first arrived (linger timer for retirement).
    fin_seen_ns: Optional[int] = None


class ReflectorProtocol(asyncio.DatagramProtocol):
    """Datagram handler implementing the reflector state machine.

    Parameters
    ----------
    clock:
        Time source for receive stamps (default: the monotonic wall clock).
    registry:
        Metrics registry; malformed datagrams land in ``live.wire_errors``,
        probes without a session in ``live.unknown_session``, etc.
    impairment_for:
        Optional factory ``(session_id) -> ReceiverImpairment | None``
        installing the deterministic forward-loss shim per session
        (loopback testing); None reflects everything faithfully.
    mode:
        ``"echo"`` or ``"sink"`` (see :data:`MODES`).
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        impairment_for=None,
        mode: str = "echo",
        recent_capacity: int = RECENT_SESSIONS,
        nak_unknown: bool = True,
    ):
        if mode not in MODES:
            raise LiveSessionError(f"reflector mode must be one of {MODES}: {mode!r}")
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else NullRegistry()
        self.impairment_for = impairment_for
        self.mode = mode
        self.sessions: Dict[int, ReflectorSession] = {}
        #: Bounded LRU of retired session ids (id -> retired_at_ns). Late
        #: duplicate probes from these count as duplicates, not unknowns.
        self.recent_sessions: "OrderedDict[int, int]" = OrderedDict()
        self.recent_capacity = max(0, recent_capacity)
        self.nak_unknown = nak_unknown
        self.wire_errors = 0
        self.unknown_session = 0
        self.unexpected_kind = 0
        self.late_duplicates = 0
        self.naks_sent = 0
        self.sessions_admitted = 0
        self.sessions_finished = 0
        self.sessions_retired = 0
        # Cumulative per-session counters folded in at retirement so the
        # aggregate metrics stay monotonic as sessions leave the dict.
        self._retired_probes_received = 0
        self._retired_probes_echoed = 0
        self._retired_impaired_drops = 0
        self._retired_duplicates = 0
        self._retired_rate_limited = 0
        self._nak_window_start_ns = 0
        self._nak_window_count = 0
        self.transport: Optional[asyncio.DatagramTransport] = None
        #: Set every time any datagram arrives — lets a serving loop
        #: implement an idle timeout without polling the socket.
        self.last_activity_ns = self.clock.now_ns()
        if self.registry.enabled:
            self.registry.add_collector(self._collect_metrics)

    # Aggregates that survive session retirement.
    @property
    def probes_received_total(self) -> int:
        return self._retired_probes_received + sum(
            s.probes_received for s in self.sessions.values()
        )

    @property
    def probes_echoed_total(self) -> int:
        return self._retired_probes_echoed + sum(
            s.probes_echoed for s in self.sessions.values()
        )

    @property
    def impaired_drops_total(self) -> int:
        return self._retired_impaired_drops + sum(
            s.impaired_drops for s in self.sessions.values()
        )

    @property
    def duplicate_arrivals_total(self) -> int:
        return (
            self._retired_duplicates
            + self.late_duplicates
            + sum(s.duplicate_arrivals for s in self.sessions.values())
        )

    @property
    def rate_limited_total(self) -> int:
        return self._retired_rate_limited + sum(
            s.rate_limited for s in self.sessions.values()
        )

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        registry.counter("live.wire_errors", role="reflector").value = self.wire_errors
        registry.counter("live.unknown_session", role="reflector").value = (
            self.unknown_session
        )
        registry.counter("live.unexpected_kind", role="reflector").value = (
            self.unexpected_kind
        )
        registry.counter("live.sessions", role="reflector").value = (
            self.sessions_admitted
        )
        # ``sample`` (not ``set``): the peak must not depend on whether a
        # live exporter happened to scrape while more sessions were up.
        registry.gauge("live.sessions_active", role="reflector").sample(
            float(len(self.sessions))
        )
        registry.counter("live.late_duplicates", role="reflector").value = (
            self.late_duplicates
        )
        registry.counter("live.naks_sent", role="reflector").value = self.naks_sent
        registry.counter("live.probes_received", role="reflector").value = (
            self.probes_received_total
        )
        registry.counter("live.probes_echoed", role="reflector").value = (
            self.probes_echoed_total
        )
        registry.counter("live.impaired_drops", role="reflector").value = (
            self.impaired_drops_total
        )
        registry.counter("live.rate_limited", role="reflector").value = (
            self.rate_limited_total
        )

    # ------------------------------------------------------- protocol plumbing
    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        """Dispatch one datagram; malformed input is counted, never raised."""
        self.last_activity_ns = self.clock.now_ns()
        try:
            header = wire.decode_header(data)
            if header.kind == wire.HELLO:
                self._on_hello(data, addr)
            elif header.kind == wire.PROBE:
                self._on_probe(header, addr)
            elif header.kind == wire.FIN:
                self._on_fin(header, addr)
            else:
                # ECHO / *_ACK datagrams belong on the sender side.
                self.unexpected_kind += 1
        except WireFormatError:
            self.wire_errors += 1

    # ------------------------------------------------------------ state machine
    def _on_hello(self, data: bytes, addr: Tuple[str, int]) -> None:
        header, spec = wire.decode_hello(data)
        session = self.sessions.get(header.session)
        if session is None:
            if not self._admit(header, spec, addr):
                return
            session = self._register(header, spec, addr)
        session.last_seen_ns = self.clock.now_ns()
        # Ack idempotently: HELLO retransmits must not reset the session.
        self._send(wire.encode_control(wire.HELLO_ACK, header.session, self.clock.now_ns()), addr)

    def _admit(
        self, header: wire.ProbeHeader, spec: wire.SessionSpec, addr: Tuple[str, int]
    ) -> bool:
        """Admission hook; the fleet layer overrides this with real policy."""
        return True

    def _register(
        self, header: wire.ProbeHeader, spec: wire.SessionSpec, addr: Tuple[str, int]
    ) -> ReflectorSession:
        impairment = (
            self.impairment_for(header.session)
            if self.impairment_for is not None
            else None
        )
        session = ReflectorSession(
            session_id=header.session,
            peer=addr,
            spec=spec,
            started_ns=self.clock.now_ns(),
            sender_epoch_ns=header.send_ns,
            impairment=impairment,
        )
        self.sessions[header.session] = session
        self.sessions_admitted += 1
        # A re-admitted id (sender restart) is live again, not "recent".
        self.recent_sessions.pop(header.session, None)
        return session

    def _on_probe(self, header: wire.ProbeHeader, addr: Tuple[str, int]) -> None:
        session = self.sessions.get(header.session)
        if session is None:
            if header.session in self.recent_sessions:
                # A straggler from a retired (finished/evicted) session:
                # its record already counted, so this is a duplicate, not
                # an unknown — and it refreshes the id's LRU position.
                self.recent_sessions.move_to_end(header.session)
                self.late_duplicates += 1
                return
            # No handshake, no service: probes from unknown sessions are
            # dropped (and counted) rather than echoed, so a stray sender
            # cannot use the reflector as a generic packet bouncer. A
            # throttled NAK tells a legitimate sender mid-session that the
            # reflector restarted and lost its state.
            self.unknown_session += 1
            if self.nak_unknown:
                self._maybe_nak(header.session, addr)
            return
        now_ns = self.clock.now_ns()
        session.last_seen_ns = now_ns
        if not self._consume_rate_token(session, now_ns):
            session.rate_limited += 1
            return
        if session.impairment is not None:
            elapsed = (now_ns - session.started_ns) / 1e9
            if session.impairment.drop(header.slot, header.index, elapsed):
                session.impaired_drops += 1
                return
        session.probes_received += 1
        key = header.key
        if key in session.recv_ns:
            session.duplicate_arrivals += 1
        else:
            session.recv_ns[key] = now_ns
            session.send_ns[key] = header.send_ns
        if self.mode == "echo":
            session.probes_echoed += 1
            self._send(wire.encode_echo(header, now_ns), addr)

    def _on_fin(self, header: wire.ProbeHeader, addr: Tuple[str, int]) -> None:
        session = self.sessions.get(header.session)
        if session is not None:
            now_ns = self.clock.now_ns()
            session.last_seen_ns = now_ns
            if not session.finished:
                session.finished = True
                session.fin_seen_ns = now_ns
                self.sessions_finished += 1
            if session.fin_send_ns is None:
                session.fin_send_ns = header.send_ns
        # FIN_ACK even for unknown sessions: the sender may be retrying
        # after the reflector restarted; letting it terminate is harmless.
        self._send(wire.encode_control(wire.FIN_ACK, header.session, self.clock.now_ns()), addr)

    def _consume_rate_token(self, session: ReflectorSession, now_ns: int) -> bool:
        """Backpressure hook; the fleet layer overrides with a token bucket."""
        return True

    def _maybe_nak(self, session_id: int, addr: Tuple[str, int]) -> None:
        """Send at most :data:`NAK_PER_SECOND` unknown-session notices."""
        now_ns = self.clock.now_ns()
        if now_ns - self._nak_window_start_ns >= 1_000_000_000:
            self._nak_window_start_ns = now_ns
            self._nak_window_count = 0
        if self._nak_window_count >= NAK_PER_SECOND:
            return
        self._nak_window_count += 1
        self.naks_sent += 1
        self._send(wire.encode_control(wire.NAK, session_id, now_ns), addr)

    def retire_session(self, session_id: int) -> Optional[ReflectorSession]:
        """Drop a session's bulky state, remembering only its id (LRU).

        Finished (FIN_ACKed) sessions previously stayed in the session
        dict forever — unbounded memory on a long-lived reflector. The
        retired id keeps answering late duplicate probes as duplicates
        instead of ``live.unknown_session``; per-session counters fold
        into cumulative totals so aggregate metrics never move backwards.
        """
        session = self.sessions.pop(session_id, None)
        if session is None:
            return None
        self._retired_probes_received += session.probes_received
        self._retired_probes_echoed += session.probes_echoed
        self._retired_impaired_drops += session.impaired_drops
        self._retired_duplicates += session.duplicate_arrivals
        self._retired_rate_limited += session.rate_limited
        self.sessions_retired += 1
        if self.recent_capacity > 0:
            self.recent_sessions[session_id] = self.clock.now_ns()
            self.recent_sessions.move_to_end(session_id)
            while len(self.recent_sessions) > self.recent_capacity:
                self.recent_sessions.popitem(last=False)
        return session

    def _send(self, payload: bytes, addr: Tuple[str, int]) -> None:
        if self.transport is not None:
            self.transport.sendto(payload, addr)

    # ------------------------------------------------------- receiver-side view
    def probe_records(self, session_id: int) -> List[ProbeRecord]:
        """Receiver-side probe records for one session (raw OWDs).

        The arrivals-only join: missing packets in probed slots *are the
        losses* (that is the whole point of sink-mode estimation), bounded
        by the FIN stamp so slots the sender never reached degrade
        coverage instead. One-way delays are
        reflector-clock-minus-sender-clock and must be rebased
        (:func:`~repro.core.clock.rebase_probe_owds`) before marking
        unless both ends share a clock.
        """
        session = self._session(session_id)
        spec = session.spec
        last_slot: Optional[int] = None
        epoch_candidates = [
            stamp - slot * spec.slot_ns
            for (slot, index), stamp in session.send_ns.items()
            if index == 0
        ]
        if session.fin_send_ns is not None and epoch_candidates:
            last_slot = (session.fin_send_ns - min(epoch_candidates)) // spec.slot_ns
        return probe_records_from_arrivals(
            schedule_from_spec(spec),
            spec.packets_per_probe,
            session.send_ns,
            session.recv_ns,
            spec.slot_ns,
            last_slot=last_slot,
        )

    def result_for(
        self, session_id: int, marking: Optional[MarkingConfig] = None
    ) -> BadabingResult:
        """One-way BADABING estimate from the reflector's own log.

        This is how a sink-mode deployment reports: rebuild the schedule
        from the session spec, rebase the cross-clock delays, and feed the
        exact same :func:`~repro.core.badabing.assemble_result` path the
        simulator and the sender use.
        """
        session = self._session(session_id)
        probes = rebase_probe_owds(self.probe_records(session_id))
        return assemble_result(
            schedule_from_spec(session.spec),
            probes,
            config_from_spec(session.spec, marking),
            duplicate_arrivals=session.duplicate_arrivals,
        )

    def _session(self, session_id: int) -> ReflectorSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise LiveSessionError(f"no such live session: {session_id}")
        return session


async def start_reflector(
    host: str = "127.0.0.1",
    port: int = 0,
    **protocol_kwargs,
) -> Tuple[asyncio.DatagramTransport, ReflectorProtocol]:
    """Bind a reflector endpoint; returns (transport, protocol).

    ``port=0`` binds an ephemeral port — read the actual one from
    ``transport.get_extra_info("sockname")[1]`` (how the loopback runner
    wires sender to reflector without a fixed port).
    """
    loop = asyncio.get_running_loop()
    try:
        return await loop.create_datagram_endpoint(
            lambda: ReflectorProtocol(**protocol_kwargs), local_addr=(host, port)
        )
    except OSError as exc:
        raise LiveSessionError(f"cannot bind reflector on {host}:{port}: {exc}") from exc
