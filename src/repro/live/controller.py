"""Adaptive fleet controller: convergence-driven probe-budget rebalancing.

The §5.4 validator tells one session when its loss estimates are
trustworthy; at fleet scale the interesting question is *where to spend
the next probe* across many paths. :class:`FleetController` owns a
roster of :class:`PathTarget` s (reflector endpoint + per-path config
template), a global probe budget measured in schedule slots, and a
deterministic rebalancing loop:

* :meth:`FleetController.step` is a synchronous, fake-clock-drivable
  decision function. Each call looks at every path's accumulated
  validator signals (F̂ / ΔF̂ / D̂, transition counts, violation rates —
  folded from each completed session's
  :class:`~repro.core.validation.ValidationReport`), weighs unconverged
  paths over converged ones under per-path floor/ceiling shares, and
  returns :class:`LaunchDirective` s telling the driver which sessions
  to start and how many slots each may spend. The asyncio glue lives in
  :mod:`repro.experiments.fleetrun`; the controller itself never touches
  a socket, which is what makes the rebalancing loop testable against a
  fake clock and benchmarkable at 50 paths without I/O.
* BUSY/RETRY_AFTER backpressure from the reflector's admission control
  is honored strictly: :meth:`FleetController.on_session_busy` refunds
  the launch's slots and arms a per-path deadline; :meth:`step` never
  re-launches that path before the advertised delay has fully elapsed.
* Every decision is recorded as a structured controller event
  (:data:`CONTROLLER_SCHEMA` NDJSON, checked by
  :func:`validate_controller_file` / ``obs validate --controller``).
* Each completed session's detached registry shard is retained keyed by
  ``(path, round)``. :meth:`FleetController.merged_registry` merges the
  shards in canonical roster/round order with ``path/session[round]``
  series labels, so the merged registry's digest is independent of the
  order sessions happened to complete — byte-identical to serially
  replaying the same final schedule (:meth:`FleetController.replay_digest`
  proves it against the chronological completion order).

``controller.*`` metrics land on the registry handed to the controller
(the export-facing registry a :class:`~repro.obs.export.TelemetryExporter`
monitors), never on the merged measurement registry, preserving the
determinism contract: measurement snapshots digest identically with and
without a controller attached.
"""

from __future__ import annotations

import json
import math
import os
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import BadabingConfig
from repro.core.clock import MonotonicClock
from repro.core.validation import (
    DEFAULT_MAX_VIOLATION_RATE,
    ValidationReport,
    report_from_counter,
)
from repro.errors import ConfigurationError, ObservabilityError
from repro.net.simulator import _stable_seed
from repro.obs.artifacts import ensure_parent_dir
from repro.obs.metrics import MetricsRegistry, NullRegistry, snapshot_digest

#: Schema identifier carried by every controller event record.
CONTROLLER_SCHEMA = "repro.live.controller/1"

#: Event kinds a controller emits.
EVENT_KINDS = ("rebalance", "complete", "busy", "failure", "final")

#: Pattern-counter keys folded from each session's ValidationReport.
_PATTERN_KEYS = ("01", "10", "001", "100", "011", "110", "010", "101")


@dataclass(frozen=True)
class PathTarget:
    """One measured path: reflector endpoint + per-path session template.

    ``port == 0`` means "no reflector yet" — the loopback driver in
    :mod:`repro.experiments.fleetrun` spins a local fleet reflector with
    this path's ``faults`` profile and fills the bound port in. ``faults``
    is driver metadata (the deterministic loopback impairment); the
    controller itself never reads it.
    """

    name: str
    config: BadabingConfig
    host: str = "127.0.0.1"
    port: int = 0
    faults: Any = None

    def __post_init__(self) -> None:
        if not self.name or any(ch in self.name for ch in "/,={}"):
            raise ConfigurationError(
                f"path name {self.name!r} must be non-empty and free of '/,={{}}'"
                " (it becomes a shard label prefix)"
            )


@dataclass(frozen=True)
class ControllerPolicy:
    """Budget and convergence knobs for one controller run.

    Attributes
    ----------
    budget_slots:
        Global probe budget: total schedule slots the controller may
        spend across all paths and rounds.
    round_slots:
        Nominal per-path slots per rebalance round; each :meth:`step`
        splits a quantum of ``round_slots × n_paths`` across the
        launchable paths.
    min_session_slots:
        Floor on a launched session's length (a schedule needs enough
        slots to produce experiments at all).
    min_share / max_share:
        Per-path floor/ceiling on the share of each round's quantum.
    converged_weight:
        Relative weight of a converged path vs an unconverged one (1.0);
        converged paths keep a trickle of monitoring probes, unconverged
        paths get the rest.
    epsilon_f:
        ΔF̂ stability threshold: a path whose cumulative F̂ moved at most
        this much over its last completed round (with at least
        ``min_experiments`` experiments) counts as converged even when
        the §5.4 stopping rule cannot fire (e.g. a lossless path never
        observes a transition).
    min_experiments:
        Experiments required before the ΔF̂ rule may declare convergence.
    target_relative_error / max_asymmetry / min_transitions:
        The §5.4 stopping-rule thresholds (mirror
        :class:`~repro.core.validation.SequentialValidator`).
    max_concurrent_per_path:
        In-flight session cap per path.
    retry_fallback:
        RETRY_AFTER to assume when a BUSY carried no usable hint.
    """

    budget_slots: int = 6000
    round_slots: int = 200
    min_session_slots: int = 40
    min_share: float = 0.05
    max_share: float = 0.85
    converged_weight: float = 0.125
    epsilon_f: float = 0.002
    min_experiments: int = 40
    target_relative_error: float = 0.25
    max_asymmetry: float = 0.3
    min_transitions: int = 20
    max_concurrent_per_path: int = 1
    retry_fallback: float = 1.0

    def __post_init__(self) -> None:
        if self.budget_slots < self.min_session_slots:
            raise ConfigurationError(
                f"budget_slots={self.budget_slots} below "
                f"min_session_slots={self.min_session_slots}"
            )
        if self.min_session_slots < 2 or self.round_slots < self.min_session_slots:
            raise ConfigurationError(
                "need min_session_slots >= 2 and round_slots >= min_session_slots"
            )
        if not (0.0 < self.min_share <= self.max_share <= 1.0):
            raise ConfigurationError(
                f"need 0 < min_share <= max_share <= 1, got "
                f"{self.min_share}/{self.max_share}"
            )
        if not (0.0 < self.converged_weight <= 1.0):
            raise ConfigurationError(
                f"converged_weight must be in (0, 1], got {self.converged_weight}"
            )
        if self.epsilon_f < 0 or self.min_experiments < 1:
            raise ConfigurationError(
                "epsilon_f must be >= 0 and min_experiments >= 1"
            )
        if not (0.0 < self.target_relative_error <= 1.0) or self.min_transitions < 1:
            raise ConfigurationError(
                "need 0 < target_relative_error <= 1 and min_transitions >= 1"
            )
        if self.max_concurrent_per_path < 1 or self.retry_fallback <= 0:
            raise ConfigurationError(
                "max_concurrent_per_path must be >= 1 and retry_fallback > 0"
            )


@dataclass(frozen=True)
class LaunchDirective:
    """One session the driver should start on behalf of the controller."""

    path: str
    round_index: int
    n_slots: int
    seed: int
    host: str
    port: int
    config: BadabingConfig


@dataclass
class PathState:
    """Everything the controller knows about one path (mutable)."""

    target: PathTarget
    #: Cumulative §5.4 pattern counter folded from completed sessions.
    counter: Counter = field(default_factory=Counter)
    #: Accumulated Σ z_i (loss indicator sum), so F̂ = z_sum / M.
    z_sum: float = 0.0
    rounds_launched: int = 0
    rounds_completed: int = 0
    active: int = 0
    spent_slots: int = 0
    busy_deferrals: int = 0
    failures: int = 0
    #: Monitoring-probe credit a converged path accrues from global
    #: spend; a converged path launches only by drawing on it.
    monitor_credit: float = 0.0
    #: Earliest ns timestamp a new launch may target this path (BUSY).
    retry_until_ns: Optional[int] = None
    prev_f_hat: Optional[float] = None
    last_f_hat: Optional[float] = None
    #: Most recent session's D̂ (seconds); None before one is available.
    d_hat_seconds: Optional[float] = None
    #: Retained detached shards keyed by round index.
    shards: Dict[int, MetricsRegistry] = field(default_factory=dict)

    @property
    def delta_f(self) -> Optional[float]:
        if self.prev_f_hat is None or self.last_f_hat is None:
            return None
        return self.last_f_hat - self.prev_f_hat

    @property
    def report(self) -> ValidationReport:
        return report_from_counter(self.counter)


def _finite(value: Optional[float]) -> Optional[float]:
    """JSON-safe float: None for NaN/Inf (events must parse strictly)."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        return None
    return value


def shard_label(path: str, round_index: int) -> str:
    """The standardized ``path/session[round]`` shard label."""
    return f"{path}/session[{round_index}]"


class ControllerEventWriter:
    """Append-only NDJSON event log, flushed per record."""

    def __init__(self, path):
        self.path = os.fspath(path)
        ensure_parent_dir(self.path, "controller events")
        try:
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot write controller events {self.path}: {exc}"
            ) from exc

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class FleetController:
    """Deterministic multi-path probe-budget rebalancer.

    Parameters
    ----------
    paths:
        Roster of :class:`PathTarget` s; roster order is decision order,
        so two controllers with the same roster, policy, seed, and fed
        the same completions make identical decisions.
    policy:
        Budget/convergence knobs.
    base_seed:
        Root of the deterministic per-launch seed derivation
        (``_stable_seed(base_seed, "ctl/<path>/<round>")``), so a
        controller run's sessions are byte-replayable.
    registry:
        Export-facing registry receiving ``controller.*`` instruments
        (never the merged measurement registry). Defaults to disabled.
    events_path:
        Optional NDJSON controller-event artifact
        (:data:`CONTROLLER_SCHEMA`).
    clock:
        ``now_ns()`` time source; injectable for fake-clock tests.
    """

    def __init__(
        self,
        paths: Sequence[PathTarget],
        policy: Optional[ControllerPolicy] = None,
        base_seed: int = 1,
        registry: Optional[MetricsRegistry] = None,
        events_path=None,
        clock=None,
    ):
        if not paths:
            raise ConfigurationError("controller needs at least one path")
        names = [target.name for target in paths]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate path names in roster: {names}")
        self.policy = policy if policy is not None else ControllerPolicy()
        self.base_seed = base_seed
        self.registry = registry if registry is not None else NullRegistry()
        self.clock = clock if clock is not None else MonotonicClock()
        self._paths: Dict[str, PathState] = {
            target.name: PathState(target=target) for target in paths
        }
        self.spent_slots = 0
        self.seq = 0
        self.events: List[Dict[str, Any]] = []
        self._start_ns = self.clock.now_ns()
        self._writer = (
            ControllerEventWriter(events_path) if events_path else None
        )
        self._finalized = False
        if self.registry.enabled:
            self.registry.gauge("controller.paths").set(float(len(self._paths)))

    # ----------------------------------------------------------------- helpers
    def _now(self, now_ns: Optional[int]) -> int:
        return self.clock.now_ns() if now_ns is None else now_ns

    def _state(self, path: str) -> PathState:
        state = self._paths.get(path)
        if state is None:
            raise ConfigurationError(f"unknown path {path!r} (roster: {sorted(self._paths)})")
        return state

    @property
    def remaining_slots(self) -> int:
        return max(0, self.policy.budget_slots - self.spent_slots)

    @property
    def paths(self) -> Tuple[str, ...]:
        return tuple(self._paths)

    def state_of(self, path: str) -> PathState:
        """Read-only-by-convention view of one path's state."""
        return self._state(path)

    # ------------------------------------------------------------- convergence
    def converged(self, path: str) -> bool:
        return self._converged(self._state(path))

    def _converged(self, state: PathState) -> bool:
        policy = self.policy
        report = state.report
        transitions = report.transition_count
        if transitions >= policy.min_transitions:
            error = 1.0 / math.sqrt(transitions)
            if error <= policy.target_relative_error and report.is_acceptable(
                max_asymmetry=policy.max_asymmetry,
                max_violation_rate=DEFAULT_MAX_VIOLATION_RATE,
                min_transitions=policy.min_transitions,
            ):
                return True
        delta = state.delta_f
        return (
            report.n_experiments >= policy.min_experiments
            and delta is not None
            and abs(delta) <= policy.epsilon_f
        )

    @property
    def all_converged(self) -> bool:
        return all(self._converged(state) for state in self._paths.values())

    @property
    def active_sessions(self) -> int:
        return sum(state.active for state in self._paths.values())

    @property
    def done(self) -> bool:
        """No further launches will ever be emitted (and none in flight)."""
        if self.active_sessions:
            return False
        return self.all_converged or self.remaining_slots < self.policy.min_session_slots

    def next_retry_in(self, now_ns: Optional[int] = None) -> Optional[float]:
        """Seconds until the soonest BUSY backoff expires (None if none)."""
        now = self._now(now_ns)
        waits = [
            (state.retry_until_ns - now) / 1e9
            for state in self._paths.values()
            if state.retry_until_ns is not None and state.retry_until_ns > now
        ]
        return min(waits) if waits else None

    def signals(self, path: str) -> Dict[str, Any]:
        """One path's validator-signal summary (as recorded in events)."""
        state = self._state(path)
        report = state.report
        transitions = report.transition_count
        return {
            "path": state.target.name,
            "f_hat": _finite(state.last_f_hat),
            "delta_f": _finite(state.delta_f),
            "d_hat_seconds": _finite(state.d_hat_seconds),
            "experiments": report.n_experiments,
            "transitions": transitions,
            "violations": report.violations,
            "violation_rate": _finite(report.violation_rate),
            "asymmetry": _finite(report.transition_asymmetry),
            "relative_error": _finite(
                1.0 / math.sqrt(transitions) if transitions else None
            ),
            "converged": self._converged(state),
            "monitor_credit": round(state.monitor_credit, 3),
            "rounds": state.rounds_completed,
            "active": state.active,
            "spent_slots": state.spent_slots,
            "busy_deferrals": state.busy_deferrals,
            "failures": state.failures,
        }

    # ----------------------------------------------------------------- events
    def _record(self, kind: str, now_ns: int, **fields: Any) -> Dict[str, Any]:
        self.seq += 1
        record = {
            "schema": CONTROLLER_SCHEMA,
            "seq": self.seq,
            "t": max(0.0, (now_ns - self._start_ns) / 1e9),
            "kind": kind,
            "remaining_slots": self.remaining_slots,
        }
        record.update(fields)
        self.events.append(record)
        if self._writer is not None:
            self._writer.write(record)
        if self.registry.enabled:
            self.registry.counter("controller.events", kind=kind).inc()
        return record

    # ------------------------------------------------------------ rebalancing
    def step(self, now_ns: Optional[int] = None) -> List[LaunchDirective]:
        """One deterministic rebalancing pass; returns sessions to launch.

        Reads every path's accumulated signals, allocates a quantum of
        ``round_slots × n_paths`` slots across the currently launchable
        paths (unconverged paths weighted ``1.0``, converged paths
        ``converged_weight``, shares clamped to
        ``[min_share, max_share]`` and renormalized), consumes the
        global budget, and records one ``rebalance`` event carrying the
        allocations plus every path's signal snapshot. Paths in BUSY
        backoff, at their concurrency cap, or starved by the exhausted
        budget are skipped. Returns ``[]`` when there is nothing to do.
        """
        now = self._now(now_ns)
        policy = self.policy
        if self._finalized or self.remaining_slots < policy.min_session_slots:
            return []
        if self.all_converged:
            return []
        # Shares are computed over the WHOLE roster — an unconverged path
        # mid-flight keeps its claim on the budget; an idle converged
        # path does not inherit it just because it happens to be the
        # only launchable one this pass.
        states = list(self._paths.values())
        converged = [self._converged(state) for state in states]
        weights = [
            policy.converged_weight if done else 1.0 for done in converged
        ]
        total = sum(weights)
        shares = [
            min(policy.max_share, max(policy.min_share, weight / total))
            for weight in weights
        ]
        norm = sum(shares)
        shares = [share / norm for share in shares]
        quantum = min(
            policy.round_slots * len(states), self.remaining_slots
        )
        launches: List[LaunchDirective] = []
        allocations: List[Dict[str, Any]] = []
        for state, share, done in zip(states, shares, converged):
            if state.active >= policy.max_concurrent_per_path:
                continue
            if state.retry_until_ns is not None:
                if now < state.retry_until_ns:
                    continue
                state.retry_until_ns = None
            if done:
                # Converged: a fixed-size monitoring check, paid from the
                # credit this path accrued out of everyone else's spend —
                # keeps drift detection alive without letting converged
                # paths soak up the budget between unconverged launches.
                if state.monitor_credit < policy.min_session_slots:
                    continue
                n_slots = policy.min_session_slots
            else:
                n_slots = max(
                    policy.min_session_slots, int(round(quantum * share))
                )
            n_slots = min(n_slots, self.remaining_slots)
            if n_slots < policy.min_session_slots:
                continue
            if done:
                state.monitor_credit -= n_slots
            round_index = state.rounds_launched
            seed = _stable_seed(
                self.base_seed, f"ctl/{state.target.name}/{round_index}"
            )
            directive = LaunchDirective(
                path=state.target.name,
                round_index=round_index,
                n_slots=n_slots,
                seed=seed,
                host=state.target.host,
                port=state.target.port,
                config=replace(state.target.config, n_slots=n_slots),
            )
            state.rounds_launched += 1
            state.active += 1
            state.spent_slots += n_slots
            self.spent_slots += n_slots
            launches.append(directive)
            allocations.append(
                {
                    "path": directive.path,
                    "round": round_index,
                    "slots": n_slots,
                    "seed": seed,
                    "share": round(share, 6),
                }
            )
        spent_this_step = sum(d.n_slots for d in launches)
        if spent_this_step:
            for state, share, done in zip(states, shares, converged):
                if done:
                    state.monitor_credit += share * spent_this_step
        if launches:
            self._record(
                "rebalance",
                now,
                allocations=allocations,
                quantum=quantum,
                signals=[self.signals(name) for name in self._paths],
            )
            if self.registry.enabled:
                self.registry.counter("controller.launches").value += len(launches)
                self.registry.counter("controller.slots_allocated").value += sum(
                    a["slots"] for a in allocations
                )
                self._sample_gauges()
        return launches

    def _sample_gauges(self) -> None:
        registry = self.registry
        registry.gauge("controller.remaining_slots").sample(
            float(self.remaining_slots)
        )
        registry.gauge("controller.paths_converged").sample(
            float(sum(1 for s in self._paths.values() if self._converged(s)))
        )
        registry.gauge("controller.active_sessions").sample(
            float(self.active_sessions)
        )

    # --------------------------------------------------------------- feedback
    def on_session_complete(
        self,
        path: str,
        round_index: int,
        frequency: Optional[float],
        validation: ValidationReport,
        duration_seconds: Optional[float] = None,
        shard: Optional[MetricsRegistry] = None,
        now_ns: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Fold one finished session's outcome into its path's state.

        ``frequency`` is the session's F̂ (NaN tolerated — skipped),
        ``validation`` its §5.4 report; both come straight off a
        :class:`~repro.core.badabing.BadabingResult`. ``shard`` is the
        session's detached metrics registry, retained for the canonical
        ``(path, round)``-ordered merge.
        """
        now = self._now(now_ns)
        state = self._state(path)
        state.active = max(0, state.active - 1)
        state.rounds_completed += 1
        m = validation.n_experiments
        state.counter["M"] += m
        for key, count in zip(
            _PATTERN_KEYS,
            (
                validation.n01, validation.n10, validation.n001,
                validation.n100, validation.n011, validation.n110,
                validation.n010, validation.n101,
            ),
        ):
            if count:
                state.counter[key] += count
        freq = _finite(frequency)
        if freq is not None and m:
            state.z_sum += freq * m
        total_m = state.counter.get("M", 0)
        state.prev_f_hat = state.last_f_hat
        state.last_f_hat = (state.z_sum / total_m) if total_m else None
        if _finite(duration_seconds) is not None:
            state.d_hat_seconds = float(duration_seconds)
        if shard is not None:
            state.shards[round_index] = shard
        if self.registry.enabled:
            self.registry.counter("controller.completions").inc()
            series_t = (now - self._start_ns) / 1e9
            if state.last_f_hat is not None:
                self.registry.series("controller.f_hat", path=path).append(
                    series_t, state.last_f_hat
                )
            self._sample_gauges()
        return self._record(
            "complete",
            now,
            path=path,
            round=round_index,
            signals=[self.signals(path)],
        )

    def on_session_busy(
        self,
        path: str,
        round_index: int,
        retry_after: Optional[float] = None,
        now_ns: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Reflector answered BUSY: refund the launch, arm the backoff.

        The path will not be offered another launch before
        ``now + retry_after`` — never sooner, exactly as the admission
        control advertised (a missing/absurd hint falls back to
        ``policy.retry_fallback``).
        """
        now = self._now(now_ns)
        state = self._state(path)
        state.active = max(0, state.active - 1)
        state.busy_deferrals += 1
        if retry_after is None or retry_after <= 0.0:
            retry_after = self.policy.retry_fallback
        deadline = now + int(retry_after * 1e9)
        if state.retry_until_ns is None or deadline > state.retry_until_ns:
            state.retry_until_ns = deadline
        # Refund: the rejected session spent no probes.
        refund = self._refund_slots(state, round_index)
        if refund and self._converged(state):
            state.monitor_credit += refund
        if self.registry.enabled:
            self.registry.counter("controller.busy_deferred").inc()
            self._sample_gauges()
        return self._record(
            "busy",
            now,
            path=path,
            round=round_index,
            retry_after=float(retry_after),
            refunded_slots=refund,
        )

    def on_session_failure(
        self,
        path: str,
        round_index: int,
        error: str,
        now_ns: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Session failed outright (no BUSY): record it, keep the spend."""
        now = self._now(now_ns)
        state = self._state(path)
        state.active = max(0, state.active - 1)
        state.failures += 1
        if self.registry.enabled:
            self.registry.counter("controller.failures").inc()
            self._sample_gauges()
        return self._record(
            "failure", now, path=path, round=round_index, error=str(error)[:300]
        )

    def _refund_slots(self, state: PathState, round_index: int) -> int:
        """Give a rejected launch's slots back to the global budget."""
        for event in reversed(self.events):
            if event["kind"] != "rebalance":
                continue
            for allocation in event.get("allocations", ()):
                if (
                    allocation["path"] == state.target.name
                    and allocation["round"] == round_index
                ):
                    slots = int(allocation["slots"])
                    state.spent_slots = max(0, state.spent_slots - slots)
                    self.spent_slots = max(0, self.spent_slots - slots)
                    return slots
        return 0

    # ------------------------------------------------------------------ final
    def finalize(self, now_ns: Optional[int] = None) -> Dict[str, Any]:
        """Write the closing event and close the artifact. Idempotent."""
        if self._finalized:
            return self.events[-1]
        now = self._now(now_ns)
        self._finalized = True
        if self.registry.enabled:
            self._sample_gauges()
        record = self._record(
            "final",
            now,
            spent_slots=self.spent_slots,
            signals=[self.signals(name) for name in self._paths],
        )
        if self._writer is not None:
            self._writer.close()
        return record

    # ------------------------------------------------------------------ merge
    def _shard_schedule(self) -> List[Tuple[str, int]]:
        """Canonical merge order: roster order, then round index."""
        schedule: List[Tuple[str, int]] = []
        for name, state in self._paths.items():
            for round_index in sorted(state.shards):
                schedule.append((name, round_index))
        return schedule

    def merged_registry(
        self, order: Optional[Sequence[Tuple[str, int]]] = None
    ) -> MetricsRegistry:
        """Merge every retained shard into one fresh registry.

        Default order is the canonical roster/round schedule; ``order``
        lets callers replay an arbitrary (e.g. chronological-completion)
        order. Series are labeled ``session=<path>/session[<round>]``, so
        shards from different paths can never collide and
        ``obs summary --by-label`` groups a controller run by path.
        """
        merged = MetricsRegistry()
        for path, round_index in (
            self._shard_schedule() if order is None else order
        ):
            shard = self._paths[path].shards.get(round_index)
            if shard is None:
                raise ObservabilityError(
                    f"no retained shard for {shard_label(path, round_index)}"
                )
            merged.merge(
                shard, series_labels={"session": shard_label(path, round_index)}
            )
        return merged

    def merged_digest(self) -> str:
        return snapshot_digest(self.merged_registry().snapshot())

    def replay_digest(self, order: Sequence[Tuple[str, int]]) -> str:
        """Digest of serially re-merging the same shards in ``order``."""
        return snapshot_digest(self.merged_registry(order=order).snapshot())


# ------------------------------------------------------------------ validation
def read_controller_events(path, tolerate_truncation: bool = True) -> List[Dict[str, Any]]:
    """Read a controller NDJSON event log into records.

    A truncated *final* line (process killed mid-write) is dropped when
    ``tolerate_truncation``; truncation anywhere else is an error.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ObservabilityError(f"cannot read controller events {path}: {exc}")
    records: List[Dict[str, Any]] = []
    for number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            records.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            if tolerate_truncation and number == len(lines):
                break
            raise ObservabilityError(
                f"{path}: line {number} is invalid JSON ({exc.msg})"
            )
    return records


def validate_controller_record(record: Any, where: str = "record") -> List[str]:
    """Structural validation of one controller event (list of problems)."""
    if not isinstance(record, dict):
        return [f"{where}: expected an object, got {type(record).__name__}"]
    problems: List[str] = []
    if record.get("schema") != CONTROLLER_SCHEMA:
        problems.append(
            f"{where}.schema: expected {CONTROLLER_SCHEMA!r}, "
            f"got {record.get('schema')!r}"
        )
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        problems.append(f"{where}.seq: expected a positive integer, got {seq!r}")
    t = record.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        problems.append(f"{where}.t: expected a non-negative number, got {t!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(
            f"{where}.kind: expected one of {EVENT_KINDS}, got {kind!r}"
        )
    remaining = record.get("remaining_slots")
    if not isinstance(remaining, int) or isinstance(remaining, bool) or remaining < 0:
        problems.append(
            f"{where}.remaining_slots: expected a non-negative integer"
        )
    if kind == "rebalance":
        allocations = record.get("allocations")
        if not isinstance(allocations, list) or not allocations:
            problems.append(f"{where}.allocations: expected a non-empty list")
        else:
            for index, allocation in enumerate(allocations):
                if not isinstance(allocation, dict) or not (
                    isinstance(allocation.get("path"), str)
                    and isinstance(allocation.get("slots"), int)
                    and allocation.get("slots", 0) > 0
                    and isinstance(allocation.get("round"), int)
                    and isinstance(allocation.get("seed"), int)
                ):
                    problems.append(
                        f"{where}.allocations[{index}]: expected "
                        "{path: str, slots: int > 0, round: int, seed: int}"
                    )
    elif kind in ("complete", "busy", "failure"):
        if not isinstance(record.get("path"), str):
            problems.append(f"{where}.path: expected a string")
        if not isinstance(record.get("round"), int):
            problems.append(f"{where}.round: expected an integer")
        if kind == "busy":
            retry_after = record.get("retry_after")
            if (
                not isinstance(retry_after, (int, float))
                or isinstance(retry_after, bool)
                or retry_after <= 0
            ):
                problems.append(
                    f"{where}.retry_after: expected a positive number"
                )
    return problems


def validate_controller_file(path) -> List[str]:
    """Validate a controller event log: per-record schema, strictly
    increasing sequence numbers, at most one (trailing) ``final``
    record. Returns a problem list (empty = valid)."""
    try:
        records = read_controller_events(path)
    except ObservabilityError as exc:
        return [str(exc)]
    if not records:
        return [f"{path}: no controller events"]
    problems: List[str] = []
    previous_seq = 0
    final_at: Optional[int] = None
    for index, record in enumerate(records):
        where = f"events[{index}]"
        problems.extend(validate_controller_record(record, where))
        seq = record.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq <= previous_seq:
                problems.append(
                    f"{where}.seq: {seq} not greater than previous {previous_seq}"
                )
            previous_seq = seq
        if record.get("kind") == "final":
            if final_at is not None:
                problems.append(f"{where}: duplicate 'final' event")
            final_at = index
    if final_at is not None and final_at != len(records) - 1:
        problems.append(
            f"events[{final_at}]: 'final' event is not the last record"
        )
    return problems
