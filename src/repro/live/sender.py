"""Asyncio UDP probe sender: walk the geometric schedule on a wall clock.

The sender is the live twin of the simulator's ``_ProbeSender`` +
``_ProbeReceiver`` pair: it emits each scheduled probe train at an
*absolute* nanosecond deadline (``epoch + slot × slot_ns`` — deadlines
never accumulate sleep error), logs send stamps, collects the
reflector's echoes into an arrival log keyed by ``(slot, index)``, and
leaves estimation entirely to the shared
:func:`repro.core.badabing.assemble_result` path.

Budgets reuse :class:`~repro.experiments.runner.RunBudget` semantics
translated to the live domain — ``max_events`` caps probe *packets*,
``max_wall_seconds`` caps the session's wall time — but a live run
**degrades instead of aborting**: hitting a budget (or Ctrl-C via the
stop event) stops emission, drains outstanding echoes, and yields a
partial record stream whose missing slots show up as reduced coverage,
exactly like a faulted simulator run.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.clock import Clock, MonotonicClock
from repro.core.records import ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.errors import LiveSessionError, WireFormatError
from repro.experiments.runner import RunBudget
from repro.live import wire
from repro.live.session import SeqKey, probe_records_from_logs
from repro.obs.metrics import MetricsRegistry, NullRegistry

#: Handshake: per-attempt ack wait and number of HELLO attempts.
HELLO_TIMEOUT = 0.5
HELLO_ATTEMPTS = 5
#: Exponential backoff with full jitter between HELLO attempts: attempt
#: ``i`` sleeps ``uniform(0, min(cap, base × 2^i))`` (plus any BUSY
#: RETRY_AFTER floor), so a thundering herd of rejected senders
#: decorrelates instead of re-colliding on the admission gate.
HELLO_BACKOFF_BASE = 0.1
HELLO_BACKOFF_CAP = 2.0
#: FIN is best-effort: fewer, shorter attempts.
FIN_TIMEOUT = 0.3
FIN_ATTEMPTS = 3
#: Post-emission wait for outstanding echoes (seconds).
DRAIN_TIMEOUT = 1.0
#: Echo-wait poll interval while draining.
DRAIN_POLL = 0.05

#: Buckets (seconds) for launch-timing error on a real host: scheduler
#: jitter at the bottom, missed-slot territory at the top.
LIVE_TIMING_BUCKETS = (1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 2.5e-2, 0.1)


@dataclass
class SenderStats:
    """What one live sender session actually did."""

    packets_sent: int = 0
    trains_sent: int = 0
    echoes_received: int = 0
    duplicate_echoes: int = 0
    wire_errors: int = 0
    #: "" = ran to schedule end; otherwise "stop" / "packet-budget" /
    #: "wall-budget" / "reflector-restart" — why emission ended early.
    stopped: str = ""
    elapsed_seconds: float = 0.0
    #: HELLO datagrams sent before the reflector acknowledged.
    hello_attempts: int = 0
    #: HELLO attempts answered with BUSY (admission rejection + retry).
    hello_busy: int = 0

    @property
    def completed(self) -> bool:
        return not self.stopped

    @property
    def degraded_reason(self) -> str:
        """Alias making degraded-run handling read naturally at call sites."""
        return self.stopped


class SenderProtocol(asyncio.DatagramProtocol):
    """Sender-side datagram handler: acks and echoes land here."""

    def __init__(self, session_id: int, clock: Clock):
        self.session_id = session_id
        self.clock = clock
        self.recv_ns: Dict[SeqKey, int] = {}
        self.hello_acked = asyncio.Event()
        self.fin_acked = asyncio.Event()
        self.hello_busy = asyncio.Event()
        #: RETRY_AFTER hint (seconds) from the latest BUSY rejection.
        self.retry_after: float = 0.0
        self.busy_reason: int = 0
        #: Set when a NAK arrives for our established session: the
        #: reflector restarted and lost our state mid-measurement.
        self.restart_detected = False
        self.wire_errors = 0
        self.duplicate_echoes = 0
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            header = wire.decode_header(data)
            if header.session != self.session_id:
                return
            if header.kind == wire.ECHO:
                _header, recv_ns = wire.decode_echo(data)
                key = header.key
                if key in self.recv_ns:
                    self.duplicate_echoes += 1
                else:
                    self.recv_ns[key] = recv_ns
            elif header.kind == wire.HELLO_ACK:
                self.hello_acked.set()
            elif header.kind == wire.FIN_ACK:
                self.fin_acked.set()
            elif header.kind == wire.BUSY:
                _header, retry_after, reason = wire.decode_busy(data)
                self.retry_after = retry_after
                self.busy_reason = reason
                self.hello_busy.set()
            elif header.kind == wire.NAK:
                # Only meaningful once the session was established —
                # before that, admission speaks BUSY, not NAK.
                if self.hello_acked.is_set() and not self.fin_acked.is_set():
                    self.restart_detected = True
        except WireFormatError:
            self.wire_errors += 1

    def error_received(self, exc) -> None:  # pragma: no cover - platform noise
        # ICMP port-unreachable while the reflector restarts; echoes for
        # in-flight probes are simply lost, which the estimator reads as
        # loss — the honest interpretation of an unreachable reflector.
        pass


class LiveSender:
    """One live sender session bound to a connected UDP endpoint."""

    def __init__(
        self,
        transport: asyncio.DatagramTransport,
        protocol: SenderProtocol,
        spec: wire.SessionSpec,
        schedule: GeometricSchedule,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        budget: Optional[RunBudget] = None,
        stop_event: Optional[asyncio.Event] = None,
        on_progress: Optional[Callable[[List[ProbeRecord], float], None]] = None,
        progress_every_trains: int = 32,
        hello_attempts: int = HELLO_ATTEMPTS,
        hello_timeout: float = HELLO_TIMEOUT,
        backoff_base: float = HELLO_BACKOFF_BASE,
        backoff_cap: float = HELLO_BACKOFF_CAP,
    ):
        self.transport = transport
        self.protocol = protocol
        self.spec = spec
        self.schedule = schedule
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else NullRegistry()
        self.budget = budget if budget is not None else RunBudget()
        self.stop_event = stop_event if stop_event is not None else asyncio.Event()
        self.on_progress = on_progress
        self.progress_every_trains = max(1, progress_every_trains)
        self.hello_attempts = max(1, hello_attempts)
        self.hello_timeout = hello_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Deterministic per-session jitter stream: reproducible runs, yet
        # distinct sessions decorrelate (full-jitter backoff needs that).
        self._jitter = random.Random(protocol.session_id ^ 0x9E3779B97F4A7C15)
        self.send_ns: Dict[SeqKey, int] = {}
        self.epoch_ns: Optional[int] = None
        self.stats = SenderStats()
        self._sequence = 0
        if self.registry.enabled:
            self._m_timing = self.registry.histogram(
                "live.timing_error_seconds",
                buckets=LIVE_TIMING_BUCKETS,
                role="sender",
            )
            self.registry.add_collector(self._collect_metrics)
        else:
            self._m_timing = None

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        registry.counter("live.packets_sent", role="sender").value = (
            self.stats.packets_sent
        )
        registry.counter("live.trains_sent", role="sender").value = (
            self.stats.trains_sent
        )
        registry.counter("live.echoes_received", role="sender").value = len(
            self.protocol.recv_ns
        )
        registry.counter("live.duplicate_echoes", role="sender").value = (
            self.protocol.duplicate_echoes
        )
        registry.counter("live.wire_errors", role="sender").value = (
            self.protocol.wire_errors
        )
        registry.counter("live.hello_attempts", role="sender").value = (
            self.stats.hello_attempts
        )
        registry.counter("live.hello_busy", role="sender").value = (
            self.stats.hello_busy
        )

    # ---------------------------------------------------------------- handshake
    def _backoff_delay(self, attempt: int, floor: float = 0.0) -> float:
        """Full-jitter exponential backoff, floored at any RETRY_AFTER hint."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return floor + self._jitter.uniform(0.0, ceiling)

    async def _await_hello_response(self, timeout: float) -> str:
        """Wait for HELLO_ACK or BUSY, whichever lands first."""
        acked = asyncio.ensure_future(self.protocol.hello_acked.wait())
        busy = asyncio.ensure_future(self.protocol.hello_busy.wait())
        try:
            done, _pending = await asyncio.wait(
                {acked, busy}, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (acked, busy):
                if not task.done():
                    task.cancel()
        if self.protocol.hello_acked.is_set():
            return "acked"
        return "busy" if busy in done else "timeout"

    async def handshake(self) -> None:
        """HELLO/HELLO_ACK with jittered backoff retries.

        A ``BUSY`` rejection is not a failure: the sender honors the
        carried RETRY_AFTER hint (plus jitter) and re-HELLOs, so a burst
        of sessions over the admission cap resolves itself as capacity
        frees up. Raises :class:`~repro.errors.LiveSessionError` only
        when every attempt timed out or was rejected.
        """
        rejected = False
        for attempt in range(self.hello_attempts):
            self.protocol.hello_busy.clear()
            self.stats.hello_attempts += 1
            self.transport.sendto(
                wire.encode_hello(
                    self.protocol.session_id, self.spec, self.clock.now_ns()
                )
            )
            response = await self._await_hello_response(self.hello_timeout)
            if response == "acked":
                return
            if response == "busy":
                rejected = True
                self.stats.hello_busy += 1
                delay = self._backoff_delay(attempt, floor=self.protocol.retry_after)
            else:
                delay = self._backoff_delay(attempt)
            if attempt + 1 < self.hello_attempts and delay > 0.0:
                await asyncio.sleep(delay)
        if rejected:
            reason = wire.BUSY_REASONS.get(self.protocol.busy_reason, "busy")
            exc = LiveSessionError(
                f"reflector rejected HELLO ({reason} cap) after "
                f"{self.stats.hello_attempts} attempts; last RETRY_AFTER "
                f"{self.protocol.retry_after:.3f}s"
            )
            # Structured backpressure for orchestrators (fleet controller):
            # carry the admission verdict so callers can honor RETRY_AFTER
            # without parsing the message.
            exc.busy = True
            exc.retry_after = self.protocol.retry_after
            exc.busy_reason = reason
            raise exc
        raise LiveSessionError(
            f"reflector did not acknowledge HELLO after "
            f"{self.stats.hello_attempts} attempts"
        )

    # ----------------------------------------------------------------- probing
    async def run(self, drain_timeout: float = DRAIN_TIMEOUT) -> List[ProbeRecord]:
        """Handshake, walk the schedule, drain, FIN; return joined records."""
        await self.handshake()
        clock = self.clock
        start_ns = clock.now_ns()
        self.epoch_ns = start_ns
        slot_ns = self.spec.slot_ns
        k = self.spec.packets_per_probe
        max_packets = self.budget.max_events
        wall_cap_ns = (
            int(self.budget.max_wall_seconds * 1e9)
            if self.budget.max_wall_seconds is not None
            else None
        )
        since_progress = 0
        for slot in self.schedule.probe_slots:
            if self.stop_event.is_set():
                self.stats.stopped = "stop"
                break
            if self.protocol.restart_detected:
                # The reflector NAKed our established session: it
                # restarted and lost the state. Probing on would only buy
                # fake loss until the budget died — degrade now instead.
                self.stats.stopped = "reflector-restart"
                break
            if max_packets is not None and self.stats.packets_sent + k > max_packets:
                self.stats.stopped = "packet-budget"
                break
            deadline_ns = start_ns + slot * slot_ns
            if wall_cap_ns is not None and deadline_ns - start_ns > wall_cap_ns:
                self.stats.stopped = "wall-budget"
                break
            delay_ns = deadline_ns - clock.now_ns()
            if delay_ns > 0:
                await asyncio.sleep(delay_ns / 1e9)
                if self.stop_event.is_set():
                    self.stats.stopped = "stop"
                    break
                if self.protocol.restart_detected:
                    self.stats.stopped = "reflector-restart"
                    break
            if self._m_timing is not None:
                self._m_timing.observe(abs(clock.now_ns() - deadline_ns) / 1e9)
            self._emit_train(slot, k)
            since_progress += 1
            if self.on_progress is not None and since_progress >= self.progress_every_trains:
                since_progress = 0
                self._report_progress()
        await self._drain(drain_timeout)
        await self._fin()
        self.stats.echoes_received = len(self.protocol.recv_ns)
        self.stats.duplicate_echoes = self.protocol.duplicate_echoes
        self.stats.wire_errors = self.protocol.wire_errors
        self.stats.elapsed_seconds = (clock.now_ns() - start_ns) / 1e9
        records = self.probe_records()
        if self.on_progress is not None:
            self._report_progress(records)
        return records

    def _emit_train(self, slot: int, k: int) -> None:
        # Packets within a train go back-to-back (the paper's ~30 µs gap is
        # below asyncio timer resolution; the serialization delay of the
        # sendto calls provides the spacing, as in the real tool).
        for index in range(k):
            stamp = self.clock.now_ns()
            self.send_ns[(slot, index)] = stamp
            self.transport.sendto(
                wire.encode_probe(
                    self.protocol.session_id,
                    self._sequence,
                    slot,
                    index,
                    k,
                    stamp,
                    probe_size=self.spec.probe_size,
                )
            )
            self._sequence += 1
            self.stats.packets_sent += 1
        self.stats.trains_sent += 1

    def _report_progress(self, records: Optional[List[ProbeRecord]] = None) -> None:
        if records is None:
            records = self.probe_records()
        elapsed = (
            (self.clock.now_ns() - self.epoch_ns) / 1e9
            if self.epoch_ns is not None
            else 0.0
        )
        self.on_progress(records, elapsed)

    async def _drain(self, drain_timeout: float) -> None:
        """Wait (bounded) for echoes still in flight after the last train."""
        deadline_ns = self.clock.now_ns() + int(drain_timeout * 1e9)
        while self.clock.now_ns() < deadline_ns:
            if len(self.protocol.recv_ns) >= self.stats.packets_sent:
                return
            if self.protocol.restart_detected:
                # No reflector state, no outstanding echoes to wait for.
                return
            await asyncio.sleep(DRAIN_POLL)

    async def _fin(self) -> None:
        """Best-effort session teardown; the reflector also times out.

        Retries back off with jitter like HELLO — a fleet of sessions
        finishing together must not synchronize their FIN retransmits.
        """
        for attempt in range(FIN_ATTEMPTS):
            self.transport.sendto(
                wire.encode_control(
                    wire.FIN, self.protocol.session_id, self.clock.now_ns()
                )
            )
            try:
                await asyncio.wait_for(
                    self.protocol.fin_acked.wait(), timeout=FIN_TIMEOUT
                )
                return
            except asyncio.TimeoutError:
                if attempt + 1 < FIN_ATTEMPTS:
                    await asyncio.sleep(self._backoff_delay(attempt))

    def probe_records(self) -> List[ProbeRecord]:
        """Join the send log with collected echoes (raw OWDs)."""
        if self.epoch_ns is None:
            return []
        return probe_records_from_logs(
            self.schedule,
            self.spec.packets_per_probe,
            self.send_ns,
            self.protocol.recv_ns,
            self.epoch_ns,
        )


async def open_sender(
    host: str,
    port: int,
    session_id: int,
    clock: Optional[Clock] = None,
) -> Tuple[asyncio.DatagramTransport, SenderProtocol]:
    """Connected UDP endpoint toward a reflector."""
    loop = asyncio.get_running_loop()
    clock = clock if clock is not None else MonotonicClock()
    try:
        return await loop.create_datagram_endpoint(
            lambda: SenderProtocol(session_id, clock), remote_addr=(host, port)
        )
    except OSError as exc:
        raise LiveSessionError(
            f"cannot open sender socket toward {host}:{port}: {exc}"
        ) from exc
