"""Machine-readable perf-trajectory documents (``BENCH_*.json``).

One document per benchmark suite run: per-scenario wall time, throughput
(events/sec, probes/sec), per-stage self/cumulative times from the
:mod:`repro.obs.profile` stage profiler, plus an environment fingerprint
and peak RSS so trajectories from different machines are comparable with
eyes open. ``repro bench`` emits them, ``repro bench --compare`` diffs
two of them under a regression threshold, ``repro obs profile`` renders
the stage tables and call trees, and CI's ``perf-trajectory`` job gates
on a committed baseline.

Validation follows the :mod:`repro.obs.schema` idiom: zero-dependency
structural validators returning problem lists, ``load_*`` raising
:class:`~repro.errors.ObservabilityError` via ``check``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.artifacts import open_artifact
from repro.obs.schema import check

#: Schema identifier for bench documents.
BENCH_SCHEMA = "repro.obs.bench/1"

#: Per-scenario fields that must be numbers when present (``wall_seconds``
#: is required; the rest are optional extras a recorder may attach).
_SCENARIO_NUMBERS = (
    "wall_seconds",
    "events_processed",
    "events_per_second",
    "probes_sent",
    "probes_per_second",
)

_STAGE_NUMBERS = ("self_seconds", "cum_seconds", "max_seconds", "sum_seconds")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def environment_fingerprint() -> Dict[str, Any]:
    """Where this trajectory point was measured (enough to judge deltas)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or None off-POSIX.

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS; normalize to
    bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS
        return int(peak)
    return int(peak) * 1024


def make_bench_document(
    suite: str,
    scenarios: Dict[str, Dict[str, Any]],
    env: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a bench document; callers fill scenario entries."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "env": env if env is not None else environment_fingerprint(),
        "peak_rss_bytes": peak_rss_bytes(),
        "scenarios": scenarios,
    }


def validate_stage(stage: Any, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(stage, dict):
        return [f"{where}: expected an object, got {type(stage).__name__}"]
    calls = stage.get("calls")
    if not isinstance(calls, int) or isinstance(calls, bool) or calls < 0:
        problems.append(f"{where}.calls: expected a non-negative integer")
    for name in _STAGE_NUMBERS:
        if name in stage and not _is_number(stage[name]):
            problems.append(f"{where}.{name}: expected a number")
        elif _is_number(stage.get(name)) and stage[name] < 0:
            problems.append(f"{where}.{name}: negative duration")
    buckets, counts = stage.get("buckets"), stage.get("counts")
    if buckets is not None or counts is not None:
        if not isinstance(buckets, list) or not isinstance(counts, list):
            problems.append(f"{where}: need buckets + counts lists together")
        else:
            if len(counts) != len(buckets) + 1:
                problems.append(
                    f"{where}: counts must have len(buckets)+1 slots"
                )
            if any(b <= a for a, b in zip(buckets, buckets[1:])):
                problems.append(f"{where}: buckets not increasing")
            if isinstance(calls, int) and sum(counts) != calls:
                problems.append(f"{where}: sum(counts) != calls")
    return problems


def validate_scenario(scenario: Any, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(scenario, dict):
        return [f"{where}: expected an object, got {type(scenario).__name__}"]
    if "wall_seconds" not in scenario:
        problems.append(f"{where}: missing field 'wall_seconds'")
    for name in _SCENARIO_NUMBERS:
        if name in scenario and not _is_number(scenario[name]):
            problems.append(f"{where}.{name}: expected a number")
    if "config_digest" in scenario and not isinstance(
        scenario["config_digest"], str
    ):
        problems.append(f"{where}.config_digest: expected a string")
    stages = scenario.get("stages")
    if stages is not None:
        if not isinstance(stages, dict):
            problems.append(f"{where}.stages: expected an object")
        else:
            for name, stage in stages.items():
                problems.extend(validate_stage(stage, f"{where}.stages[{name!r}]"))
    edges = scenario.get("edges")
    if edges is not None:
        if not isinstance(edges, list):
            problems.append(f"{where}.edges: expected a list")
        else:
            for index, edge in enumerate(edges):
                if not isinstance(edge, dict) or "stage" not in edge:
                    problems.append(
                        f"{where}.edges[{index}]: expected an object with 'stage'"
                    )
    return problems


def validate_bench_document(document: Any) -> List[str]:
    """Structural validation of a ``repro.obs.bench/1`` document."""
    if not isinstance(document, dict):
        return [f"document: expected an object, got {type(document).__name__}"]
    problems: List[str] = []
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"document.schema: expected {BENCH_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if not isinstance(document.get("suite"), str) or not document.get("suite"):
        problems.append("document.suite: expected a non-empty string")
    env = document.get("env")
    if not isinstance(env, dict):
        problems.append("document.env: expected an object")
    else:
        for name in ("python", "platform", "cpu_count"):
            if name not in env:
                problems.append(f"document.env: missing field {name!r}")
    rss = document.get("peak_rss_bytes")
    if rss is not None and (not isinstance(rss, int) or isinstance(rss, bool)):
        problems.append("document.peak_rss_bytes: expected an integer or null")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("document.scenarios: expected a non-empty object")
    else:
        for name, scenario in scenarios.items():
            problems.extend(validate_scenario(scenario, f"scenarios[{name!r}]"))
    return problems


def stage_names(document: Dict[str, Any]) -> List[str]:
    """All stage names appearing anywhere in the document, sorted."""
    names = set()
    for scenario in document.get("scenarios", {}).values():
        if isinstance(scenario, dict):
            names.update((scenario.get("stages") or {}).keys())
    return sorted(names)


def write_bench_document(path, document: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and write a bench document (creating parent dirs)."""
    check(validate_bench_document(document), "bench document")
    with open_artifact(path, "bench document") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_bench_document(path) -> Dict[str, Any]:
    """Read + validate a bench document, raising on schema problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read bench document {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: invalid JSON ({exc.msg})")
    check(validate_bench_document(document), str(path))
    return document


# ------------------------------------------------------------------ comparison
def compare_bench_documents(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 2.0,
    min_seconds: float = 0.005,
) -> Tuple[List[str], List[Dict[str, Any]]]:
    """Diff two bench documents under a slowdown threshold.

    Returns ``(report_lines, regressions)``: the report covers every
    scenario present in both documents (wall time plus per-stage self
    time), and a regression entry is emitted wherever ``new/old``
    exceeds ``threshold`` on a measurement whose old value was at least
    ``min_seconds`` (sub-threshold-noise timings cannot regress).
    Scenarios or stages present on one side only are reported but never
    flagged.
    """
    if threshold <= 1.0:
        raise ObservabilityError(
            f"regression threshold must be > 1.0, got {threshold}"
        )
    lines: List[str] = []
    regressions: List[Dict[str, Any]] = []
    old_scenarios = old.get("scenarios", {})
    new_scenarios = new.get("scenarios", {})
    lines.append(
        f"bench compare: suite {old.get('suite')!r} -> {new.get('suite')!r}, "
        f"threshold {threshold:.2f}x (floor {min_seconds * 1e3:.0f} ms)"
    )
    for name in sorted(set(old_scenarios) | set(new_scenarios)):
        before = old_scenarios.get(name)
        after = new_scenarios.get(name)
        if before is None or after is None:
            side = "baseline" if before is None else "new document"
            lines.append(f"  {name}: only present in one side (missing from {side})")
            continue
        lines.extend(
            _compare_measurement(
                name,
                "wall",
                before.get("wall_seconds"),
                after.get("wall_seconds"),
                threshold,
                min_seconds,
                regressions,
            )
        )
        old_stages = before.get("stages") or {}
        new_stages = after.get("stages") or {}
        for stage in sorted(set(old_stages) & set(new_stages)):
            lines.extend(
                _compare_measurement(
                    name,
                    f"stage {stage} self",
                    old_stages[stage].get("self_seconds"),
                    new_stages[stage].get("self_seconds"),
                    threshold,
                    min_seconds,
                    regressions,
                )
            )
    if regressions:
        lines.append(f"REGRESSIONS: {len(regressions)} measurement(s) over threshold")
    else:
        lines.append("no regressions over threshold")
    return lines, regressions


def _compare_measurement(
    scenario: str,
    what: str,
    before: Any,
    after: Any,
    threshold: float,
    min_seconds: float,
    regressions: List[Dict[str, Any]],
) -> List[str]:
    if not _is_number(before) or not _is_number(after):
        return []
    if before < min_seconds:
        return [
            f"  {scenario} [{what}]: {before * 1e3:.2f} -> {after * 1e3:.2f} ms "
            "(below noise floor, not gated)"
        ]
    ratio = after / before if before > 0 else float("inf")
    line = (
        f"  {scenario} [{what}]: {before * 1e3:.2f} -> {after * 1e3:.2f} ms "
        f"({ratio:.2f}x)"
    )
    if ratio > threshold:
        line += "  <-- REGRESSION"
        regressions.append(
            {
                "scenario": scenario,
                "measurement": what,
                "old_seconds": before,
                "new_seconds": after,
                "ratio": ratio,
            }
        )
    return [line]


# ------------------------------------------------------------------- rendering
def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds * 1e6:8.1f} us"


def render_stage_table(
    stages: Dict[str, Dict[str, Any]], top: int = 20, width: int = 24
) -> List[str]:
    """Self-time table in the ``obs summary`` style, hottest first."""
    if not stages:
        return ["  (no stages recorded)"]
    total_self = sum(
        float(stage.get("self_seconds", 0.0)) for stage in stages.values()
    )
    lines = [
        f"  {'stage':<18} {'calls':>9} {'self':>11} {'cum':>11} "
        f"{'max':>11}  self%"
    ]
    ranked = sorted(
        stages.items(),
        key=lambda item: -float(item[1].get("self_seconds", 0.0)),
    )
    for name, stage in ranked[:top]:
        self_s = float(stage.get("self_seconds", 0.0))
        share = self_s / total_self if total_self > 0 else 0.0
        bar = "#" * max(1, round(share * width)) if self_s > 0 else ""
        lines.append(
            f"  {name:<18} {stage.get('calls', 0):>9} "
            f"{_format_seconds(self_s)} "
            f"{_format_seconds(float(stage.get('cum_seconds', 0.0)))} "
            f"{_format_seconds(float(stage.get('max_seconds', 0.0)))} "
            f"{share * 100:5.1f} {bar}"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more stage(s)")
    return lines


def render_call_tree(
    edges: Iterable[Dict[str, Any]], stages: Dict[str, Dict[str, Any]]
) -> List[str]:
    """Indented call tree from parent->child edges, heaviest first."""
    children: Dict[str, List[Dict[str, Any]]] = {}
    for edge in edges or ():
        children.setdefault(edge.get("parent", ""), []).append(edge)
    if not children:
        return []
    for siblings in children.values():
        siblings.sort(key=lambda e: -float(e.get("cum_seconds", 0.0)))
    lines: List[str] = []
    seen = set()

    def _walk(parent: str, depth: int) -> None:
        for edge in children.get(parent, ()):  # depth-first, heaviest first
            stage = edge["stage"]
            cum = float(edge.get("cum_seconds", 0.0))
            lines.append(
                f"  {'  ' * depth}{stage:<{max(2, 28 - 2 * depth)}} "
                f"{edge.get('calls', 0):>9} calls {_format_seconds(cum)}"
            )
            if stage in seen or depth > 8:
                continue  # recursion guard
            seen.add(stage)
            _walk(stage, depth + 1)
            seen.discard(stage)

    _walk("", 0)
    return lines


def render_bench_document(document: Dict[str, Any], top: int = 10) -> List[str]:
    """Human-readable summary of a bench document."""
    env = document.get("env", {})
    lines = [
        f"bench suite {document.get('suite')!r} "
        f"(python {env.get('python')}, {env.get('cpu_count')} cpus)"
    ]
    rss = document.get("peak_rss_bytes")
    if rss:
        lines.append(f"peak RSS: {rss / (1 << 20):.1f} MiB")
    for name, scenario in sorted(document.get("scenarios", {}).items()):
        wall = scenario.get("wall_seconds")
        parts = [f"{name}: {wall:.3f} s" if _is_number(wall) else f"{name}:"]
        if _is_number(scenario.get("events_per_second")):
            parts.append(f"{scenario['events_per_second']:,.0f} events/s")
        if _is_number(scenario.get("probes_per_second")):
            parts.append(f"{scenario['probes_per_second']:,.0f} probes/s")
        lines.append("  " + "  ".join(parts))
        stages = scenario.get("stages") or {}
        if stages:
            hottest = sorted(
                stages.items(),
                key=lambda item: -float(item[1].get("self_seconds", 0.0)),
            )[:top]
            hot = ", ".join(
                f"{stage}={float(data.get('self_seconds', 0.0)) * 1e3:.1f}ms"
                for stage, data in hottest[:3]
            )
            lines.append(f"    hottest: {hot}")
    return lines


def render_profile_document(
    document: Dict[str, Any],
    scenario: Optional[str] = None,
    top: int = 20,
) -> List[str]:
    """Full per-scenario stage tables + call trees (``obs profile``)."""
    scenarios = document.get("scenarios", {})
    if scenario is not None:
        if scenario not in scenarios:
            raise ObservabilityError(
                f"scenario {scenario!r} not in document "
                f"(has: {', '.join(sorted(scenarios)) or 'none'})"
            )
        selected = {scenario: scenarios[scenario]}
    else:
        selected = scenarios
    lines: List[str] = []
    for name, data in sorted(selected.items()):
        wall = data.get("wall_seconds")
        header = f"== {name}"
        if _is_number(wall):
            header += f" ({wall:.3f} s wall)"
        lines.append(header)
        lines.extend(render_stage_table(data.get("stages") or {}, top=top))
        tree = render_call_tree(data.get("edges") or [], data.get("stages") or {})
        if tree:
            lines.append("  call tree:")
            lines.extend(tree)
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return lines


# ------------------------------------------------------------ shared recorder
class BenchRecorder:
    """Incremental writer for the shared pytest-benchmark BENCH JSON.

    ``benchmarks/conftest.py`` exposes one of these per session; each
    ``test_bench_*`` guard appends its measurement via :meth:`record`,
    and :meth:`flush` merges into any existing document on disk (so
    separate pytest invocations of different benchmark files accumulate
    into one trajectory file) and writes it schema-validated.
    """

    def __init__(self, path, suite: str):
        self.path = path
        self.suite = suite
        self.entries: Dict[str, Dict[str, Any]] = {}

    def record(
        self, name: str, wall_seconds: float, **extra: Any
    ) -> Dict[str, Any]:
        entry = {"wall_seconds": float(wall_seconds)}
        entry.update(extra)
        self.entries[name] = entry
        return entry

    def flush(self) -> Optional[Dict[str, Any]]:
        if not self.entries:
            return None
        scenarios: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(self.path):
            try:
                existing = load_bench_document(self.path)
                scenarios.update(existing.get("scenarios", {}))
            except ObservabilityError:
                pass  # rewrite a corrupt/legacy file wholesale
        scenarios.update(self.entries)
        document = make_bench_document(self.suite, scenarios)
        return write_bench_document(self.path, document)
