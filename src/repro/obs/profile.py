"""Deterministic stage profiler for the measurement pipeline.

Two complementary modes, both zero-dependency:

* **Scoped stage timers** (:class:`StageProfiler`): the pipeline's named
  stages — ``schedule.generate``, ``sim.run``, ``queue.service``,
  ``marking.apply``, ``estimator.fold``, ``validator.fold``,
  ``wire.encode``/``wire.decode``, ``trace.io``, ``registry.merge`` —
  carry lightweight monotonic-clock timers that attribute *self* time
  (stage minus its children) and *cumulative* time (whole stage,
  reentrancy-aware) per stage, bucket every call into a fixed-bound
  histogram, and record parent→child edges for call-tree rendering.
* **Interval sampling** (:class:`StackSampler`): a daemon thread
  periodically walks the target thread's Python stack via
  ``sys._current_frames`` and accumulates self/cumulative sample counts
  per function — coverage for code no scoped timer instruments.

Determinism contract (DESIGN.md §14): profiling must never perturb
metric snapshot digests. A profiler keeps all of its wall-clock state on
*itself*; it only touches a :class:`~repro.obs.metrics.MetricsRegistry`
when :meth:`StageProfiler.publish` is called explicitly (bench shards
use this to ride the existing ``merge(series_labels=)`` aggregation),
and publication is **assignment-based** — the registered collector
overwrites ``profile.*`` instruments with the profiler's totals instead
of replaying observations, so repeated collect/snapshot/merge cycles
(exporter scrapes, shard merges) can never double-count.

The process-global activation plumbing (:data:`~repro.profiling.ACTIVE`,
:func:`~repro.profiling.profiling`, :func:`~repro.profiling.profile_stage`)
lives in :mod:`repro.profiling` so hot modules can import it without the
``repro.obs`` package cycle; it is re-exported here.
"""

from __future__ import annotations

import sys
import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.profiling import (  # noqa: F401  (re-exported API surface)
    STAGE_BUCKETS,
    active_profiler,
    profile_stage,
    profiling,
    set_active_profiler,
)

PROFILE_SCHEMA = "repro.obs.profile/1"

#: The pipeline stages the substrate instruments out of the box. Kept as
#: one canonical tuple so tests and the bench document can assert
#: coverage against a single source of truth.
PIPELINE_STAGES: Tuple[str, ...] = (
    "schedule.generate",
    "sim.run",
    "queue.service",
    "marking.apply",
    "estimator.fold",
    "validator.fold",
    "wire.encode",
    "wire.decode",
    "trace.io",
    "registry.merge",
)


class _StageStat:
    """Accumulated timings for one named stage."""

    __slots__ = (
        "name", "calls", "self_seconds", "cum_seconds", "max_seconds",
        "sum_seconds", "counts",
    )

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.self_seconds = 0.0
        #: Reentrancy-aware total: nested same-name frames contribute only
        #: via the outermost one, so recursion cannot inflate this past
        #: wall time.
        self.cum_seconds = 0.0
        self.max_seconds = 0.0
        #: Plain per-call duration total (histogram ``sum``): *does* count
        #: nested same-name calls, matching ``counts``.
        self.sum_seconds = 0.0
        self.counts = [0] * (len(STAGE_BUCKETS) + 1)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "self_seconds": self.self_seconds,
            "cum_seconds": self.cum_seconds,
            "max_seconds": self.max_seconds,
            "sum_seconds": self.sum_seconds,
            "buckets": list(STAGE_BUCKETS),
            "counts": list(self.counts),
        }


class StageProfiler:
    """Scoped stage timer with self/cumulative attribution.

    Frames are plain lists (``[name, start, child_seconds]``) handed back
    from :meth:`start` and consumed by :meth:`stop`; the hot-path cost of
    an instrumented stage is two monotonic clock reads plus a handful of
    arithmetic ops. Not thread-safe by design — one profiler per thread
    (the pipeline is single-threaded per cell); the sampler covers
    threads.
    """

    enabled = True

    def __init__(self, clock=perf_counter):
        self._clock = clock
        self._stack: List[list] = []
        self._stats: Dict[str, _StageStat] = {}
        self._edges: Dict[Tuple[str, str], List[float]] = {}
        self._depth: Dict[str, int] = {}
        #: Open leaf accumulators: (parent_frame_or_None, name, acc).
        self._leaf_accs: List[tuple] = []

    # ------------------------------------------------------------- timing
    def start(self, name: str) -> list:
        """Open a stage frame. Pair with :meth:`stop` in a finally block."""
        self._depth[name] = self._depth.get(name, 0) + 1
        frame = [name, 0.0, 0.0]
        self._stack.append(frame)
        # Clock read last so profiler bookkeeping lands in the parent's
        # self time, not the child's.
        frame[1] = self._clock()
        return frame

    def stop(self, frame: list) -> float:
        """Close ``frame``; returns its wall duration in seconds.

        Tolerates exception unwinding that abandoned frames above this
        one (they are discarded without recording) and ignores a frame
        that was already stopped.
        """
        now = self._clock()
        stack = self._stack
        for open_frame in stack:
            if open_frame is frame:
                break
        else:
            return 0.0
        abandoned: List[list] = []
        while stack:
            top = stack.pop()
            if top is frame:
                break
            # Abandoned by an exception before its own stop() could run:
            # drop it, but keep the reentrancy depth bookkeeping honest.
            self._depth[top[0]] = self._depth.get(top[0], 1) - 1
            abandoned.append(top)
        if self._leaf_accs:
            # Fold leaf accumulators whose parent frame is closing; their
            # total lands in frame[2] (child time) before self is computed.
            keep = []
            for parent, leaf_name, acc in self._leaf_accs:
                if parent is frame or any(parent is top for top in abandoned):
                    total = self._fold_leaf(parent[0], leaf_name, acc)
                    if parent is frame:
                        frame[2] += total
                else:
                    keep.append((parent, leaf_name, acc))
            self._leaf_accs[:] = keep
        name = frame[0]
        duration = now - frame[1]
        if duration < 0.0:
            duration = 0.0
        depth = self._depth.get(name, 1) - 1
        self._depth[name] = depth
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _StageStat(name)
        stat.calls += 1
        self_seconds = duration - frame[2]
        if self_seconds < 0.0:
            self_seconds = 0.0
        stat.self_seconds += self_seconds
        if depth == 0:
            stat.cum_seconds += duration
        if duration > stat.max_seconds:
            stat.max_seconds = duration
        stat.sum_seconds += duration
        stat.counts[bisect_left(STAGE_BUCKETS, duration)] += 1
        if stack:
            parent = stack[-1]
            parent[2] += duration
            edge_key = (parent[0], name)
        else:
            edge_key = ("", name)
        edge = self._edges.get(edge_key)
        if edge is None:
            edge = self._edges[edge_key] = [0, 0.0]
        edge[0] += 1
        edge[1] += duration
        return duration

    @contextmanager
    def stage(self, name: str) -> Iterator[list]:
        """Scoped form of :meth:`start`/:meth:`stop`."""
        frame = self.start(name)
        try:
            yield frame
        finally:
            self.stop(frame)

    def record(self, name: str, seconds: float) -> None:
        """Record one already-measured leaf call of ``seconds`` duration.

        The cheap path for per-packet sites (queue service, wire codecs):
        the caller reads the clock itself, so there is no frame push/pop.
        The call is charged to the enclosing open frame (if any) as child
        time and gets a parent edge, exactly like a scoped frame would.
        """
        if seconds < 0.0:
            seconds = 0.0
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _StageStat(name)
        stat.calls += 1
        stat.self_seconds += seconds
        # Inside an open same-name scoped frame the enclosing stop() will
        # count this time in cum already (reentrancy rule).
        if self._depth.get(name, 0) == 0:
            stat.cum_seconds += seconds
        if seconds > stat.max_seconds:
            stat.max_seconds = seconds
        stat.sum_seconds += seconds
        stat.counts[bisect_left(STAGE_BUCKETS, seconds)] += 1
        stack = self._stack
        if stack:
            parent = stack[-1]
            parent[2] += seconds
            edge_key = (parent[0], name)
        else:
            edge_key = ("", name)
        edge = self._edges.get(edge_key)
        if edge is None:
            edge = self._edges[edge_key] = [0, 0.0]
        edge[0] += 1
        edge[1] += seconds

    def leaf(self, name: str) -> list:
        """Preregistered accumulator for a per-event hot site.

        :meth:`record` still costs a method call plus several dict
        operations per event — too much inside the simulator's
        per-packet loop. ``leaf`` hands the caller a plain mutable list
        ``[calls, total_seconds, max_seconds, counts, closed]`` to update
        *inline* (index ops only); the accumulator is folded into the
        stage stats when the enclosing open frame stops, or at
        snapshot/stages time for root-level accumulators. ``closed``
        flips True at fold — callers must re-fetch a fresh accumulator
        when they see it set.
        """
        acc = [0, 0.0, 0.0, [0] * (len(STAGE_BUCKETS) + 1), False]
        parent = self._stack[-1] if self._stack else None
        self._leaf_accs.append((parent, name, acc))
        return acc

    def _fold_leaf(self, parent_name: str, name: str, acc: list) -> float:
        """Fold one leaf accumulator into the stats; returns its total."""
        acc[4] = True
        calls = acc[0]
        if not calls:
            return 0.0
        total = acc[1]
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = _StageStat(name)
        stat.calls += calls
        stat.self_seconds += total
        # Same reentrancy rule as record(): inside an open same-name
        # scoped frame the enclosing stop() counts this time in cum.
        if self._depth.get(name, 0) == 0:
            stat.cum_seconds += total
        if acc[2] > stat.max_seconds:
            stat.max_seconds = acc[2]
        stat.sum_seconds += total
        counts = stat.counts
        for index, count in enumerate(acc[3]):
            counts[index] += count
        edge_key = (parent_name, name)
        edge = self._edges.get(edge_key)
        if edge is None:
            edge = self._edges[edge_key] = [0, 0.0]
        edge[0] += calls
        edge[1] += total
        return total

    def _flush_leaves(self) -> None:
        """Fold every remaining leaf accumulator (snapshot/stages time).

        Accumulators under a *still-open* frame charge that frame's child
        time now, so its eventual stop() still computes self correctly.
        """
        if not self._leaf_accs:
            return
        open_ids = {id(open_frame) for open_frame in self._stack}
        for parent, name, acc in self._leaf_accs:
            total = self._fold_leaf(parent[0] if parent else "", name, acc)
            if parent is not None and id(parent) in open_ids:
                parent[2] += total
        self._leaf_accs.clear()

    # ------------------------------------------------------------ documents
    def stages(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage stats as plain dicts, sorted by stage name."""
        self._flush_leaves()
        return {
            name: self._stats[name].to_dict() for name in sorted(self._stats)
        }

    def edges(self) -> List[Dict[str, Any]]:
        """Parent→child call edges (root edges have ``parent == ""``)."""
        self._flush_leaves()
        return [
            {
                "parent": parent,
                "stage": stage,
                "calls": calls,
                "cum_seconds": cum,
            }
            for (parent, stage), (calls, cum) in sorted(self._edges.items())
        ]

    def snapshot(self) -> Dict[str, Any]:
        """The profiler's state as a ``repro.obs.profile/1`` document."""
        return {
            "schema": PROFILE_SCHEMA,
            "enabled": True,
            "stages": self.stages(),
            "edges": self.edges(),
        }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Counters and histogram buckets add; ``max_seconds`` takes the
        max — the same semantics registry merge gives the published form.
        """
        for name, stage in snapshot.get("stages", {}).items():
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = _StageStat(name)
            counts = stage.get("counts", [])
            if len(counts) != len(stat.counts):
                raise ObservabilityError(
                    f"cannot absorb stage {name!r}: bucket shape differs"
                )
            stat.calls += int(stage.get("calls", 0))
            stat.self_seconds += float(stage.get("self_seconds", 0.0))
            stat.cum_seconds += float(stage.get("cum_seconds", 0.0))
            stat.sum_seconds += float(stage.get("sum_seconds", 0.0))
            stat.max_seconds = max(
                stat.max_seconds, float(stage.get("max_seconds", 0.0))
            )
            for i, n in enumerate(counts):
                stat.counts[i] += int(n)
        for edge in snapshot.get("edges", []):
            key = (edge.get("parent", ""), edge["stage"])
            slot = self._edges.get(key)
            if slot is None:
                slot = self._edges[key] = [0, 0.0]
            slot[0] += int(edge.get("calls", 0))
            slot[1] += float(edge.get("cum_seconds", 0.0))

    # ----------------------------------------------------------- publication
    def publish(self, registry) -> None:
        """Expose stage stats as ``profile.*`` instruments on ``registry``.

        Registers a pull-collector that *assigns* the profiler's current
        totals — ``profile.stage_calls``/``profile.stage_self_seconds``/
        ``profile.stage_cum_seconds`` counters, a ``profile.stage_seconds``
        histogram loaded wholesale via :meth:`~repro.obs.metrics.Histogram.load`,
        and a ``profile.stage_max_seconds`` gauge sampled to the peak.
        Assignment makes collection idempotent: an exporter scraping the
        registry mid-run, a ``detach_collectors()`` bake, and the
        ``merge()``-triggered collect all observe the same totals exactly
        once, so shard histograms survive
        ``MetricsRegistry.merge(series_labels=...)`` without
        double-counting. No-op on disabled registries.

        Note this intentionally writes *wall-clock* data into the
        registry, which breaks the snapshot's seed-determinism — callers
        opt in per registry (bench shards only); default pipelines never
        publish.
        """
        if not registry.enabled:
            return
        registry.add_collector(self._collect_into)

    def _collect_into(self, registry) -> None:
        self._flush_leaves()
        for name, stat in self._stats.items():
            registry.counter("profile.stage_calls", stage=name).value = stat.calls
            registry.counter(
                "profile.stage_self_seconds", stage=name
            ).value = stat.self_seconds
            registry.counter(
                "profile.stage_cum_seconds", stage=name
            ).value = stat.cum_seconds
            registry.gauge("profile.stage_max_seconds", stage=name).sample(
                stat.max_seconds
            )
            registry.histogram(
                "profile.stage_seconds", buckets=STAGE_BUCKETS, stage=name
            ).load(stat.counts, stat.sum_seconds)


class NullProfiler:
    """Disabled profiler: same API, records nothing.

    Activating one via :func:`~repro.profiling.set_active_profiler`
    normalizes to no active profiler at all, so even the ``None`` check
    at instrumentation sites is the only cost.
    """

    enabled = False

    def start(self, name: str) -> None:
        return None

    def stop(self, frame) -> float:
        return 0.0

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        yield None

    def record(self, name: str, seconds: float) -> None:
        pass

    def leaf(self, name: str) -> list:
        # Pre-closed: a caller that checks the closed flag re-fetches
        # forever without accumulating anything.
        return [0, 0.0, 0.0, [0] * (len(STAGE_BUCKETS) + 1), True]

    def stages(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def edges(self) -> List[Dict[str, Any]]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "enabled": False,
            "stages": {},
            "edges": [],
        }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        pass

    def publish(self, registry) -> None:
        pass


def merge_stage_maps(
    base: Dict[str, Dict[str, Any]], other: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Merge two ``stages`` maps (snapshot/:func:`stages_from_registry`
    shaped) with add/max semantics; neither input is mutated."""
    combined = StageProfiler()
    combined.absorb({"stages": base, "edges": []})
    combined.absorb({"stages": other, "edges": []})
    return combined.stages()


def stages_from_registry(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Reconstruct a ``stages`` map from published ``profile.*`` metrics.

    The inverse of :meth:`StageProfiler.publish` over a (possibly merged)
    registry snapshot — how the bench suite recovers worker-side stage
    stats after a parallel sweep folded its shards together. Edges are
    not published, so the result carries timing stats only.
    """
    from repro.obs.export import parse_key

    stages: Dict[str, Dict[str, Any]] = {}

    def _slot(labels: Dict[str, str]) -> Optional[Dict[str, Any]]:
        stage = labels.get("stage")
        if stage is None:
            return None
        slot = stages.get(stage)
        if slot is None:
            slot = stages[stage] = {
                "calls": 0,
                "self_seconds": 0.0,
                "cum_seconds": 0.0,
                "max_seconds": 0.0,
                "sum_seconds": 0.0,
                "buckets": list(STAGE_BUCKETS),
                "counts": [0] * (len(STAGE_BUCKETS) + 1),
            }
        return slot

    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_key(key)
        slot = _slot(labels)
        if slot is None:
            continue
        if name == "profile.stage_calls":
            slot["calls"] = int(value)
        elif name == "profile.stage_self_seconds":
            slot["self_seconds"] = float(value)
        elif name == "profile.stage_cum_seconds":
            slot["cum_seconds"] = float(value)
    for key, gauge in snapshot.get("gauges", {}).items():
        name, labels = parse_key(key)
        if name != "profile.stage_max_seconds":
            continue
        slot = _slot(labels)
        if slot is not None:
            slot["max_seconds"] = float(gauge.get("peak", gauge.get("value", 0.0)))
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_key(key)
        if name != "profile.stage_seconds":
            continue
        slot = _slot(labels)
        if slot is not None:
            slot["counts"] = [int(n) for n in hist.get("counts", slot["counts"])]
            slot["buckets"] = list(hist.get("buckets", slot["buckets"]))
            slot["sum_seconds"] = float(hist.get("sum", 0.0))
    return {name: stages[name] for name in sorted(stages)}


class StackSampler:
    """Interval stack sampler for un-instrumented code.

    A daemon thread wakes every ``interval`` seconds, grabs the target
    thread's current Python stack via ``sys._current_frames()``, and
    counts, per ``module:function``, how often it was the executing leaf
    (*self* samples) and how often it appeared anywhere on the stack
    (*cumulative* samples, deduplicated per sample so recursion cannot
    inflate them). Start/stop are lock-guarded and idempotent, so racing
    callers (or a stop racing the sampling loop) are safe.
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 64):
        if interval <= 0:
            raise ObservabilityError(
                f"sampler interval must be positive, got {interval}"
            )
        self.interval = interval
        self.max_depth = max_depth
        self.samples = 0
        self._functions: Dict[str, List[int]] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_id: Optional[int] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        """Begin sampling the *calling* thread. Idempotent while running."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._target_id = threading.get_ident()
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-stack-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        """Stop sampling and join the sampler thread. Idempotent."""
        with self._lock:
            thread = self._thread
            self._thread = None
            self._stop_event.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        return self

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run(self) -> None:
        target_id = self._target_id
        while not self._stop_event.wait(self.interval):
            frame = sys._current_frames().get(target_id)
            if frame is None:
                continue
            self._record_stack(frame)

    def _record_stack(self, frame) -> None:
        self.samples += 1
        seen = set()
        depth = 0
        leaf = True
        while frame is not None and depth < self.max_depth:
            name = (
                f"{frame.f_globals.get('__name__', '?')}:"
                f"{frame.f_code.co_name}"
            )
            slot = self._functions.get(name)
            if slot is None:
                slot = self._functions[name] = [0, 0]
            if leaf:
                slot[0] += 1
                leaf = False
            if name not in seen:
                seen.add(name)
                slot[1] += 1
            frame = frame.f_back
            depth += 1

    def snapshot(self) -> Dict[str, Any]:
        """Sample counts as a ``repro.obs.profile/1`` sampling document."""
        return {
            "schema": PROFILE_SCHEMA,
            "enabled": True,
            "mode": "sampling",
            "interval": self.interval,
            "samples": self.samples,
            "functions": {
                name: {"self": counts[0], "cum": counts[1]}
                for name, counts in sorted(self._functions.items())
            },
        }
