"""Streaming telemetry export: NDJSON snapshots + HTTP exposition.

PRs 2–3 made every run measurable *after the fact*: registries are
snapshotted once, when the run exits. This module makes the same
registries observable *while the run is alive* — the operational
counterpart of the paper's §5.4 argument that a measurement should be
validated as it runs, not post-hoc.

Three pieces:

* :class:`SnapshotWriter` — newline-delimited JSON records with
  monotonic sequence numbers and bounded single-file rotation, so a
  multi-hour soak cannot fill the disk and a crash mid-write loses at
  most the last line.
* :class:`TelemetryExporter` — periodically snapshots a live
  :class:`~repro.obs.metrics.MetricsRegistry`, runs the attached
  :class:`~repro.obs.alerts.AlertRules`, appends an export record, and
  (optionally) serves a zero-dependency Prometheus-style text endpoint
  over asyncio HTTP: ``/metrics`` (exposition), ``/healthz`` (liveness
  JSON), ``/sessions`` (per-session rollup JSON the dashboard renders).
  Works in three modes: ``await start()``/``await stop()`` inside an
  asyncio runtime, ``start_thread()``/``close()`` from synchronous code,
  or pure manual ``export_now()`` calls (sweep progress snapshots).
* Rollups + validation — :func:`rollup_sessions` groups merged fleet or
  sweep shards back into per-session rows; :func:`validate_export_file`
  is the CI check for recorded snapshot streams.

Determinism contract: the exporter NEVER writes into the monitored
registry. Alert gauges and export bookkeeping live on the exporter's own
side registry (:attr:`TelemetryExporter.own`), and sequence numbers /
wall timestamps travel in the record *envelope*, so the monitored
registry's :func:`~repro.obs.metrics.snapshot_digest` stays byte-identical
with and without export enabled. Under :class:`~repro.obs.metrics.NullRegistry`
every entry point is a no-op: no file, no server, no thread.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.alerts import AlertRule, AlertRules
from repro.obs.artifacts import ensure_parent_dir
from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    _sort_key,
    snapshot_digest,
)
from repro.obs.schema import validate_snapshot

#: Schema identifier carried by every exported snapshot record.
EXPORT_SCHEMA = "repro.obs.export/1"

#: Schema identifier of the ``/sessions`` rollup document.
SESSIONS_SCHEMA = "repro.obs.sessions/1"

#: Record kinds an exporter emits.
EXPORT_KINDS = ("periodic", "progress", "final", "manual")

#: Labels that identify a merged shard (fleet sessions, sweep cells).
GROUP_LABEL_KEYS = ("session", "cell")

#: Series names whose last value is a running F̂ (loss frequency) estimate.
_FREQUENCY_SERIES = ("audit.f_hat", "live.frequency")


# --------------------------------------------------------------------- writer
class SnapshotWriter:
    """Append-only NDJSON writer with bounded single-generation rotation.

    When the current file would exceed ``max_bytes`` the handle is closed,
    the file renamed to ``<path>.1`` (replacing any previous generation),
    and a fresh file opened — total disk use stays under ~2×``max_bytes``
    for arbitrarily long runs. Every record is flushed as one line, so a
    killed process leaves at most one truncated trailing line (the reader
    side tolerates exactly that).
    """

    def __init__(self, path, max_bytes: int = 16_000_000):
        if max_bytes < 4096:
            raise ObservabilityError(f"max_bytes must be >= 4096, got {max_bytes}")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.rotations = 0
        self.records_written = 0
        self._bytes = 0
        ensure_parent_dir(self.path, "export snapshots")
        self._handle = self._open()

    def _open(self):
        try:
            return open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot write export snapshots {self.path}: {exc}"
            ) from exc

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        line = json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
        if self._bytes and self._bytes + len(line) > self.max_bytes:
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._bytes += len(line)
        self.records_written += 1

    def _rotate(self) -> None:
        self._handle.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot rotate export snapshots {self.path}: {exc}"
            ) from exc
        self._handle = self._open()
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None


# ------------------------------------------------------------------- exporter
class TelemetryExporter:
    """Periodic registry → snapshot-stream/HTTP bridge with alerting.

    Parameters
    ----------
    registry:
        The monitored registry. A :class:`NullRegistry` disables the
        exporter entirely (every method becomes a no-op).
    interval:
        Seconds between periodic exports (asyncio task or thread mode).
    path:
        Optional NDJSON snapshot file (see :class:`SnapshotWriter`).
    http_port:
        Enable the HTTP endpoint on this port when :meth:`start` runs
        inside asyncio; ``0`` binds an ephemeral port (read the bound
        port back from :attr:`http_port`). ``None`` disables HTTP.
    rules:
        Declarative :class:`~repro.obs.alerts.AlertRule` list evaluated
        on every export against the fresh snapshot.
    tracer:
        Optional tracer receiving ``alert.fired``/``alert.resolved``
        events and ``export.*`` markers.
    meta:
        Static context (tool name, fleet size, …) copied into every
        record envelope and the ``/healthz`` document.
    clock / wall_clock:
        Injectable time sources (monotonic uptime, wall timestamps) so
        tests can drive the envelope deterministically.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 1.0,
        path=None,
        http_host: str = "127.0.0.1",
        http_port: Optional[int] = None,
        rules: Sequence[AlertRule] = (),
        tracer=None,
        meta: Optional[Dict[str, Any]] = None,
        max_bytes: int = 16_000_000,
        clock=time.monotonic,
        wall_clock=time.time,
    ):
        if interval <= 0:
            raise ObservabilityError(f"export interval must be > 0, got {interval}")
        self.registry = registry
        self.enabled = bool(getattr(registry, "enabled", False))
        self.interval = float(interval)
        self.tracer = tracer
        self.meta = dict(meta or {})
        #: Side registry owning alert gauges + export bookkeeping. Never
        #: merged into the monitored registry: its contents are wall-clock
        #: shaped and would break same-seed snapshot digests.
        self.own: MetricsRegistry = MetricsRegistry() if self.enabled else NullRegistry()
        self.rules = AlertRules(rules, registry=self.own, tracer=tracer)
        self.seq = 0
        self.last_record: Optional[Dict[str, Any]] = None
        self.http_host = http_host
        self.http_port = http_port
        self._clock = clock
        self._wall = wall_clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._writer = (
            SnapshotWriter(path, max_bytes) if (path is not None and self.enabled) else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._task: Optional[asyncio.Task] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_stop: Optional[threading.Event] = None
        self._closed = False

    # ------------------------------------------------------------- snapshots
    def _snapshot(self) -> Dict[str, Any]:
        # A thread-mode exporter can snapshot while the monitored run is
        # registering new instruments; dict iteration then raises
        # RuntimeError. Instrument creation is rare (hot paths resolve
        # once), so a short retry always wins.
        for _ in range(8):
            try:
                return self.registry.snapshot()
            except RuntimeError:
                continue
        return self.registry.snapshot()

    def export_now(self, kind: str = "manual", **context: Any) -> Optional[Dict[str, Any]]:
        """Snapshot, evaluate alerts, append one record. Returns the record.

        No-op (returns None) when disabled or already closed. ``context``
        lands in the record envelope (e.g. ``cell=...`` for sweep
        progress), never in the metrics snapshot.
        """
        if not self.enabled or self._closed:
            return None
        if kind not in EXPORT_KINDS:
            raise ObservabilityError(
                f"export kind must be one of {EXPORT_KINDS}, got {kind!r}"
            )
        with self._lock:
            snapshot = self._snapshot()
            wall = self._wall()
            events = self.rules.evaluate(snapshot, wall)
            self.seq += 1
            record = {
                "schema": EXPORT_SCHEMA,
                "seq": self.seq,
                "wall": wall,
                "uptime": self._clock() - self._t0,
                "kind": kind,
                "digest": snapshot_digest(snapshot),
                "meta": self.meta,
                "context": dict(context),
                "alerts": {
                    "active": self.rules.active,
                    "events": [event.to_dict() for event in events],
                    "state": self.rules.state_document(),
                },
                "metrics": snapshot,
            }
            self.own.counter("export.records", kind=kind).inc()
            if self._writer is not None:
                self._writer.write(record)
                self.own.gauge("export.rotations").set(float(self._writer.rotations))
            self.last_record = record
            return record

    # --------------------------------------------------------- asyncio mode
    async def start(self) -> "TelemetryExporter":
        """Start the periodic task (and HTTP server when configured)."""
        if not self.enabled or self._closed:
            return self
        if self.http_port is not None and self._server is None:
            self._server = await asyncio.start_server(
                self._serve_connection, self.http_host, self.http_port
            )
            self.http_port = self._server.sockets[0].getsockname()[1]
            if self.tracer is not None:
                self.tracer.event(
                    "export.http_started", host=self.http_host, port=self.http_port
                )
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._periodic())
        return self

    async def _periodic(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            self.export_now(kind="periodic")

    async def stop(self) -> None:
        """Cancel the periodic task, close the server, write the final record."""
        if not self.enabled:
            return
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.close()

    # ---------------------------------------------------------- thread mode
    def start_thread(self) -> "TelemetryExporter":
        """Run periodic exports on a daemon thread (synchronous callers)."""
        if not self.enabled or self._closed or self._thread is not None:
            return self
        self._thread_stop = threading.Event()

        def loop() -> None:
            while not self._thread_stop.wait(self.interval):
                self.export_now(kind="periodic")

        self._thread = threading.Thread(
            target=loop, name="telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Final export + writer close. Idempotent; safe on any path out
        (normal exit, ``RunBudget`` exhaustion, Ctrl-C drain, eviction)."""
        if not self.enabled or self._closed:
            return
        if self._thread is not None:
            self._thread_stop.set()
            self._thread.join(timeout=max(5.0, 2 * self.interval))
            self._thread = None
        self.export_now(kind="final")
        self._closed = True
        if self._writer is not None:
            self._writer.close()
        if self.tracer is not None:
            self.tracer.event("export.closed", seq=self.seq)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ HTTP
    async def _serve_connection(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            while True:  # drain request headers
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            target = parts[1] if len(parts) > 1 else "/"
            status, content_type, body = self._route(method, target.split("?")[0])
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str) -> Tuple[str, str, str]:
        if method != "GET":
            return (
                "405 Method Not Allowed",
                "application/json",
                json.dumps({"error": f"method {method} not allowed"}) + "\n",
            )
        self.own.counter("export.scrapes", path=path).inc()
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_exposition(self.registry, self.own),
            )
        if path == "/healthz":
            body = {
                "status": "degraded" if self.rules.active else "ok",
                "schema": EXPORT_SCHEMA,
                "seq": self.seq,
                "uptime": self._clock() - self._t0,
                "interval": self.interval,
                "alerts_active": self.rules.active,
                "meta": self.meta,
            }
            return ("200 OK", "application/json", json.dumps(body) + "\n")
        if path == "/sessions":
            document = sessions_document(
                self._snapshot(),
                alerts=self.rules.state_document(),
                meta=self.meta,
                seq=self.seq,
                uptime=self._clock() - self._t0,
                wall=self._wall(),
            )
            return ("200 OK", "application/json", json.dumps(document) + "\n")
        return (
            "404 Not Found",
            "application/json",
            json.dumps({"error": f"no route {path}", "routes": ["/metrics", "/healthz", "/sessions"]})
            + "\n",
        )


# ----------------------------------------------------------------- exposition
def _expo_name(name: str, suffix: str = "") -> str:
    base = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"repro_{base}{suffix}"


def _expo_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _expo_labels(labels: Tuple[Tuple[str, str], ...], extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    pairs = list(labels) + list(extra or ())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_expo_escape(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _expo_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_exposition(registry: MetricsRegistry, own: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text-format (0.0.4) rendering of one or two registries.

    Renders directly from the instrument objects (exact label tuples, no
    key re-parsing): counters as ``counter``, gauges as ``gauge`` (+ a
    ``_peak`` companion), histograms with cumulative ``le`` buckets plus
    ``_sum``/``_count``, bounded series as a gauge holding the last
    sample (+ ``_samples``). ``own`` is the exporter's side registry —
    alert/export meta-metrics — appended after the monitored registry.
    """
    lines: List[str] = []
    for reg in (registry,) + ((own,) if own is not None else ()):
        if reg is None or not reg.enabled:
            continue
        reg.collect()
        seen_types: Dict[str, str] = {}

        def emit(name: str, kind: str, labels, value, suffix: str = "", extra=None) -> None:
            metric = _expo_name(name, suffix)
            if seen_types.get(metric) != kind:
                lines.append(f"# TYPE {metric} {kind}")
                seen_types[metric] = kind
            lines.append(f"{metric}{_expo_labels(labels, extra)} {_expo_number(value)}")

        for counter in sorted(reg._counters.values(), key=_sort_key):
            emit(counter.name, "counter", counter.labels, counter.value)
        for gauge in sorted(reg._gauges.values(), key=_sort_key):
            emit(gauge.name, "gauge", gauge.labels, gauge.value)
            emit(gauge.name, "gauge", gauge.labels, gauge.peak, suffix="_peak")
        for hist in sorted(reg._histograms.values(), key=_sort_key):
            counts = list(hist.counts)
            cumulative = 0
            for bound, count in zip(hist.buckets, counts):
                cumulative += count
                emit(
                    hist.name, "histogram", hist.labels, cumulative,
                    suffix="_bucket", extra=(("le", _expo_number(bound)),),
                )
            emit(
                hist.name, "histogram", hist.labels, sum(counts),
                suffix="_bucket", extra=(("le", "+Inf"),),
            )
            emit(hist.name, "histogram", hist.labels, hist.total_sum, suffix="_sum")
            emit(hist.name, "histogram", hist.labels, sum(counts), suffix="_count")
        for series in sorted(reg._series.values(), key=_sort_key):
            times, values = series.points()
            if not values:
                continue
            emit(series.name, "gauge", series.labels, values[-1])
            emit(series.name, "gauge", series.labels, len(values), suffix="_samples")
    return "\n".join(lines) + ("\n" if lines else "")


# -------------------------------------------------------------------- rollups
def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Best-effort inverse of :func:`~repro.obs.metrics.render_key`.

    Splits ``name{k=v,k2=v2}`` on commas, then each pair on the first
    ``=``. Lossy only for label *values* containing a comma, which no
    substrate label uses (cell labels are ``grid[0]``-shaped, session
    labels ``session[3]``-shaped).
    """
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def rollup_sessions(
    snapshot: Dict[str, Any],
    group_keys: Sequence[str] = GROUP_LABEL_KEYS,
) -> List[Dict[str, Any]]:
    """Group a merged snapshot's series into per-session/cell rollup rows.

    Each row carries the running F̂ (last value of ``audit.f_hat`` or
    ``live.frequency``), its delta over the previous retained sample,
    D̂ and §5.4 violation rate when audited, the retained sample count
    and the latest sample time. Series without any group label fold into
    a single ``run`` row, so a plain (non-fleet) live run still renders.
    """
    rows: Dict[str, Dict[str, Any]] = {}

    def row_for(group: str) -> Dict[str, Any]:
        return rows.setdefault(
            group,
            {
                "label": group,
                "f_hat": None,
                "f_delta": None,
                "d_hat_seconds": None,
                "violation_rate": None,
                "samples": 0,
                "last_t": None,
            },
        )

    for key, series in snapshot.get("series", {}).items():
        name, labels = parse_key(key)
        group = next((labels[k] for k in group_keys if k in labels), None)
        values = series.get("values") or []
        times = series.get("times") or []
        if not values:
            continue
        if group is None:
            if name not in _FREQUENCY_SERIES + ("audit.d_hat_seconds", "audit.violation_rate"):
                continue
            group = "run"
        row = row_for(group)
        if name in _FREQUENCY_SERIES:
            # audit.f_hat wins over live.frequency when both are present.
            if row["f_hat"] is None or name == _FREQUENCY_SERIES[0]:
                row["f_hat"] = values[-1]
                row["f_delta"] = values[-1] - values[-2] if len(values) >= 2 else None
                row["samples"] = len(values)
        elif name == "audit.d_hat_seconds":
            row["d_hat_seconds"] = values[-1]
        elif name == "audit.violation_rate":
            row["violation_rate"] = values[-1]
        if times:
            row["last_t"] = max(row["last_t"] or 0.0, times[-1])
    return [rows[label] for label in sorted(rows)]


def sessions_document(
    snapshot: Dict[str, Any],
    alerts: Optional[List[Dict[str, Any]]] = None,
    meta: Optional[Dict[str, Any]] = None,
    seq: Optional[int] = None,
    uptime: Optional[float] = None,
    wall: Optional[float] = None,
) -> Dict[str, Any]:
    """The ``/sessions`` rollup the dashboard renders (also built offline
    from recorded export records by ``repro dash --replay``)."""
    drops: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_key(key)
        if "cause" in labels:
            drops[labels["cause"]] = drops.get(labels["cause"], 0) + value
        counters[name] = counters.get(name, 0) + value
    gauges: Dict[str, float] = {}
    for key, gauge in snapshot.get("gauges", {}).items():
        name, _ = parse_key(key)
        gauges[name] = gauge["value"]
    return {
        "schema": SESSIONS_SCHEMA,
        "seq": seq,
        "uptime": uptime,
        "wall": wall,
        "meta": dict(meta or {}),
        "sessions": rollup_sessions(snapshot),
        "drops": dict(sorted(drops.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "alerts": list(alerts or []),
    }


# ----------------------------------------------------------------- validation
def validate_export_record(record: Any, where: str = "record") -> List[str]:
    """Structural validation of one export record (list of problems)."""
    if not isinstance(record, dict):
        return [f"{where}: expected an object, got {type(record).__name__}"]
    problems: List[str] = []
    if record.get("schema") != EXPORT_SCHEMA:
        problems.append(
            f"{where}.schema: expected {EXPORT_SCHEMA!r}, got {record.get('schema')!r}"
        )
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        problems.append(f"{where}.seq: expected a positive integer, got {seq!r}")
    for name in ("wall", "uptime"):
        value = record.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{where}.{name}: expected a number")
    if record.get("kind") not in EXPORT_KINDS:
        problems.append(
            f"{where}.kind: expected one of {EXPORT_KINDS}, got {record.get('kind')!r}"
        )
    alerts = record.get("alerts")
    if not isinstance(alerts, dict) or not {"active", "events"} <= set(alerts):
        problems.append(f"{where}.alerts: expected {{active, events, ...}}")
    metrics = record.get("metrics")
    if metrics is None:
        problems.append(f"{where}: missing 'metrics' snapshot")
    else:
        problems.extend(validate_snapshot(metrics, where=f"{where}.metrics"))
        digest = record.get("digest")
        if isinstance(metrics, dict) and digest != snapshot_digest(metrics):
            problems.append(f"{where}.digest: does not match the metrics snapshot")
    return problems


def read_export_records(path, tolerate_truncation: bool = True) -> List[Dict[str, Any]]:
    """Read an NDJSON export stream into records.

    A truncated *final* line (process killed mid-write) is dropped when
    ``tolerate_truncation``; truncation anywhere else is an error.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ObservabilityError(f"cannot read export snapshots {path}: {exc}")
    records: List[Dict[str, Any]] = []
    for number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            records.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            if tolerate_truncation and number == len(lines):
                break
            raise ObservabilityError(
                f"{path}: line {number} is invalid JSON ({exc.msg})"
            )
    return records


def validate_export_file(path) -> List[str]:
    """Validate a recorded snapshot stream: per-record schema + digest,
    strictly increasing sequence numbers. Returns a problem list."""
    try:
        records = read_export_records(path)
    except ObservabilityError as exc:
        return [str(exc)]
    if not records:
        return [f"{path}: no export records"]
    problems: List[str] = []
    previous_seq = 0
    for index, record in enumerate(records):
        where = f"records[{index}]"
        problems.extend(validate_export_record(record, where))
        seq = record.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq <= previous_seq:
                problems.append(
                    f"{where}.seq: {seq} not greater than previous {previous_seq}"
                )
            previous_seq = seq
    return problems
