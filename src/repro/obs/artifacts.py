"""Shared artifact-write plumbing for exported observability files.

Every ``--*-out`` flag ultimately funnels through here: parent
directories are created on demand (``--metrics-out runs/today/m.json``
just works) and OS-level failures surface as structured
:class:`~repro.errors.ObservabilityError`\\ s — which the CLI renders as
``error: ...`` with exit code 2 — instead of a raw ``FileNotFoundError``
traceback.
"""

from __future__ import annotations

import os
from typing import Type

from repro.errors import ObservabilityError


def ensure_parent_dir(
    path,
    what: str = "artifact",
    exc_type: Type[Exception] = ObservabilityError,
) -> None:
    """Create the parent directory of ``path`` if it is missing.

    Raises ``exc_type`` (default :class:`ObservabilityError`) when the
    directory cannot be created — e.g. a path component is an existing
    file, or permissions forbid it.
    """
    directory = os.path.dirname(os.fspath(path))
    if not directory:
        return
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise exc_type(f"cannot create directory for {what} {path}: {exc}") from exc


def open_artifact(
    path,
    what: str = "artifact",
    exc_type: Type[Exception] = ObservabilityError,
):
    """Open ``path`` for text writing, creating parent directories.

    The returned handle is a normal file object; failures raise
    ``exc_type`` with a human-readable message naming the artifact.
    """
    ensure_parent_dir(path, what, exc_type)
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        raise exc_type(f"cannot write {what} {path}: {exc}") from exc
