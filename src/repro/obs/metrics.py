"""Zero-dependency metrics: counters, gauges, histograms, time series.

The registry is the substrate every perf/accuracy PR measures against, so
its design optimizes for two things:

* **Hot paths stay hot.** Per-packet code never formats strings or touches
  dicts: instruments are resolved once at construction time and incremented
  through plain attribute arithmetic, and bulk counts (queue/link totals)
  are *pulled* from the raw ``__slots__`` counters the substrate already
  keeps, via collector callbacks that run only at :meth:`MetricsRegistry.snapshot`
  time. Components check :attr:`MetricsRegistry.enabled` once and skip
  per-event instrumentation entirely under :class:`NullRegistry`.
* **Determinism.** Everything recorded here is in the *simulation* domain
  (virtual time, event counts, byte occupancy), never wall-clock, so two
  runs with the same seed produce byte-identical snapshots. Wall-clock data
  lives in :class:`~repro.obs.manifest.RunManifest` and the trace file.

Instruments are keyed by ``(name, labels)``; repeated ``counter("x", q="a")``
calls return the same object, so components can resolve freely.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import profiling as _profiling
from repro.errors import ObservabilityError

#: Collector callback: called with the registry at snapshot time so cheap
#: raw counters (QueueStats, Link totals, ...) can be published lazily.
Collector = Callable[["MetricsRegistry"], None]

#: Default histogram buckets (seconds): spans one simulator tick to minutes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Buckets for small integer run lengths (drop bursts, retries).
RUN_LENGTH_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 10, 20, 50, 100)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Stable string form: ``name`` or ``name{k=v,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter. ``value`` may also be written directly by
    collectors that publish an externally-kept total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value plus the peak ever written."""

    __slots__ = ("name", "labels", "value", "peak")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def sample(self, value: float) -> None:
        """Record a point-in-time reading with the peak pinned to it.

        Pull-collectors publishing instantaneous state (pending events,
        active sessions) run once per snapshot — which, with a live
        exporter attached, can be many times mid-run instead of once at
        the end. ``set`` would then capture transient peaks an
        end-only snapshot never sees, making the snapshot digest depend
        on *when* scrapes happened. ``sample`` keeps the digest a pure
        function of simulation state.
        """
        self.value = value
        self.peak = value


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds observations with
    ``value <= buckets[i]``; the final slot is the +Inf overflow bucket.

    Sums absorbed through :meth:`MetricsRegistry.merge` are kept as a
    flat list of per-shard contributions and reduced with
    :func:`math.fsum` (exactly rounded, hence independent of addend
    order) when read — so merging the same shards in any order yields a
    byte-identical snapshot, the invariant the fleet-controller and
    parallel-sweep digest checks rely on. Plain ``a += b`` float
    accumulation would make the merged ``sum`` depend on completion
    order.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum", "_merged_sums")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or any(later <= earlier for later, earlier in zip(buckets[1:], buckets)):
            raise ObservabilityError(
                f"histogram buckets must be strictly increasing: {buckets}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._merged_sums: List[float] = []

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def load(self, counts, total: float) -> None:
        """Overwrite state with externally-aggregated bucket counts.

        The *assignment* counterpart of :meth:`observe`, for collectors
        that publish a histogram kept elsewhere (the stage profiler's
        per-stage timings): replaying observations from a collector
        would add them again on every collect/snapshot/merge cycle,
        whereas loading the full state is idempotent — the fix that lets
        profiler histograms survive repeated exporter scrapes and
        ``MetricsRegistry.merge`` across sweep shards without
        double-counting.
        """
        if len(counts) != len(self.counts):
            raise ObservabilityError(
                f"histogram {self.name!r}: cannot load {len(counts)} bucket "
                f"counts into {len(self.counts)} buckets"
            )
        self.counts = [int(n) for n in counts]
        self.count = sum(self.counts)
        self.sum = float(total)
        self._merged_sums = []

    def sum_terms(self) -> List[float]:
        """Every sum contribution this histogram holds (local + merged)."""
        return [self.sum] + self._merged_sums

    @property
    def total_sum(self) -> float:
        """Order-independent total of local and merged-in observation sums."""
        if not self._merged_sums:
            return self.sum
        return math.fsum(self.sum_terms())

    @property
    def mean(self) -> float:
        return self.total_sum / self.count if self.count else 0.0


class Series:
    """Bounded (time, value) series with deterministic decimation.

    Keeps every ``stride``-th appended sample; when ``max_samples`` is
    reached, every other retained sample is discarded and the stride
    doubles. Memory stays O(max_samples) over arbitrarily long runs and
    the retained points depend only on the append sequence — never on
    wall-clock — so seeded runs stay byte-identical.

    The most recent append is always remembered: once the stride exceeds 1
    most appends fall in the skip phase, so without a retained tail a
    snapshot taken mid-phase would report a last value up to ``stride - 1``
    appends stale. :meth:`points` (what snapshots and merges read) returns
    the decimated samples plus that trailing point when decimation skipped
    it — still a pure function of the append sequence.
    """

    __slots__ = (
        "name", "labels", "max_samples", "times", "values", "stride", "_phase",
        "_tail_time", "_tail_value", "_tail_retained",
    )

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        max_samples: int = 1024,
    ):
        if max_samples < 2:
            raise ObservabilityError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self.times: List[float] = []
        self.values: List[float] = []
        self.stride = 1
        self._phase = 0
        self._tail_time: Optional[float] = None
        self._tail_value = 0.0
        self._tail_retained = True

    def append(self, time: float, value: float) -> None:
        self._tail_time = time
        self._tail_value = value
        if self._phase:
            self._phase -= 1
            self._tail_retained = False
            return
        self._phase = self.stride - 1
        self.times.append(time)
        self.values.append(value)
        self._tail_retained = True
        if len(self.times) >= self.max_samples:
            # Halving keeps even indices; the just-appended sample survives
            # only when it sat at an even index.
            self._tail_retained = (len(self.times) - 1) % 2 == 0
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.stride *= 2

    def points(self) -> Tuple[List[float], List[float]]:
        """Retained samples plus the freshest append when it was skipped.

        Trimmed to matching lengths: a snapshot taken by a concurrent
        exporter can land between the two appends inside :meth:`append`,
        and the exported document must stay self-consistent even then.
        """
        times, values = list(self.times), list(self.values)
        if len(times) != len(values):
            shortest = min(len(times), len(values))
            times, values = times[:shortest], values[:shortest]
        if self._tail_retained or self._tail_time is None:
            return times, values
        return times + [self._tail_time], values + [self._tail_value]


class MetricsRegistry:
    """Labeled instrument registry with pull-collectors.

    All instruments live in one namespace; :meth:`snapshot` runs the
    registered collectors (publishing raw substrate counters) and returns
    a plain-JSON-serializable document.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, tuple], Counter] = {}
        self._gauges: Dict[Tuple[str, tuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, tuple], Histogram] = {}
        self._series: Dict[Tuple[str, tuple], Series] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------ instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], buckets)
        return instrument

    def series(self, name: str, max_samples: int = 1024, **labels: Any) -> Series:
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = Series(name, key[1], max_samples)
        return instrument

    # ------------------------------------------------------------- collectors
    def add_collector(self, collector: Collector) -> None:
        """Register a callback run at snapshot time (publish raw counters)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run all collectors now (normally done by :meth:`snapshot`)."""
        for collector in self._collectors:
            collector(self)

    # --------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        """Collect and return the full metric state as a JSON-able dict.

        Snapshots contain only simulation-domain values, so two runs with
        the same seed yield identical snapshots (this is tested).
        """
        self.collect()
        return {
            "counters": {
                render_key(c.name, c.labels): c.value
                for c in sorted(self._counters.values(), key=_sort_key)
            },
            "gauges": {
                render_key(g.name, g.labels): {"value": g.value, "peak": g.peak}
                for g in sorted(self._gauges.values(), key=_sort_key)
            },
            "histograms": {
                # count is recomputed from the copied bucket list so a
                # snapshot racing a concurrent observe() is always
                # self-consistent (count == sum(counts)); on a quiescent
                # registry the value is identical to the running counter.
                render_key(h.name, h.labels): {
                    "buckets": list(h.buckets),
                    "counts": counts,
                    "count": sum(counts),
                    "sum": h.total_sum,
                }
                for h, counts in (
                    (h, list(h.counts))
                    for h in sorted(self._histograms.values(), key=_sort_key)
                )
            },
            "series": {
                render_key(s.name, s.labels): {
                    "times": points[0],
                    "values": points[1],
                    "stride": s.stride,
                }
                for s, points in (
                    (s, s.points())
                    for s in sorted(self._series.values(), key=_sort_key)
                )
            },
        }

    def detach_collectors(self) -> "MetricsRegistry":
        """Collect once, then drop the collector callbacks. Returns self.

        Collectors close over live substrate objects (simulators, queues,
        links), which cannot cross a process boundary and keep finished
        runs alive. A sweep worker calls this after its cell completes so
        the registry it sends back is a plain data object: the raw totals
        the collectors would have published are baked into the instruments,
        and a later :meth:`collect`/:meth:`snapshot` is a no-op on them.
        """
        self.collect()
        self._collectors = []
        return self

    # ------------------------------------------------------------------ merge
    def merge(
        self,
        other: "MetricsRegistry",
        series_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold another registry into this one.

        Counters and histogram buckets add; gauges keep the later write
        (and the max of the peaks); series are concatenated sample-wise
        (re-decimated under this registry's bounds). Histograms with
        mismatched bucket bounds raise :class:`ObservabilityError`.

        ``series_labels`` adds extra labels to every absorbed *series* key
        (e.g. ``cell=<sweep label>``). Sweep shards use this so each
        cell's series stays a separate, monotonically-timed instrument
        instead of interleaving restarting sim clocks into one stream —
        counters/gauges/histograms still aggregate across the shards.
        """
        prof = _profiling.ACTIVE
        frame = prof.start("registry.merge") if prof is not None else None
        try:
            self._merge(other, series_labels)
        finally:
            if prof is not None:
                prof.stop(frame)

    def _merge(
        self,
        other: "MetricsRegistry",
        series_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        other.collect()
        for (name, labels), src in other._counters.items():
            self.counter(name, **dict(labels)).value += src.value
        for (name, labels), src in other._gauges.items():
            dst = self.gauge(name, **dict(labels))
            dst.value = src.value
            dst.peak = max(dst.peak, src.peak)
        for (name, labels), src in other._histograms.items():
            dst = self.histogram(name, buckets=src.buckets, **dict(labels))
            if dst.buckets != src.buckets:
                raise ObservabilityError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for i, n in enumerate(src.counts):
                dst.counts[i] += n
            dst.count += src.count
            # Keep contributions flat so re-merging merged registries
            # still reduces one multiset of shard sums with fsum.
            dst._merged_sums.extend(src.sum_terms())
        for (name, labels), src in other._series.items():
            merged_labels = dict(labels)
            if series_labels:
                merged_labels.update(series_labels)
            dst = self.series(name, max_samples=src.max_samples, **merged_labels)
            for t, v in zip(*src.points()):
                dst.append(t, v)


class NullRegistry(MetricsRegistry):
    """Disabled registry: same API, retains nothing, snapshots empty.

    Instruments handed out are real (so ``counter.value`` etc. still work
    for local bookkeeping) but are never registered, collectors are
    dropped, and hot paths that check :attr:`enabled` skip instrumentation
    entirely — the substrate runs at pre-observability speed.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return Counter(name, _label_key(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return Gauge(name, _label_key(labels))

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return Histogram(name, _label_key(labels), buckets)

    def series(self, name: str, max_samples: int = 1024, **labels: Any) -> Series:
        return Series(name, _label_key(labels), max_samples)

    def add_collector(self, collector: Collector) -> None:
        pass

    def merge(
        self,
        other: "MetricsRegistry",
        series_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        pass

    def detach_collectors(self) -> "MetricsRegistry":
        return self


def _sort_key(instrument) -> Tuple[str, tuple]:
    return (instrument.name, instrument.labels)


def snapshot_digest(snapshot: Dict[str, Any]) -> str:
    """Canonical sha256 hex digest of a snapshot document.

    Two registries with byte-identical metric state produce equal digests
    regardless of instrument creation order (snapshots sort by key). Used
    by the sweep engine's equivalence checks: a parallel sweep's merged
    snapshot must digest identically to the serial run on the same seeds.
    """
    import hashlib
    import json

    payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def merge_snapshots(base: Dict[str, Any], other: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two snapshot documents (same semantics as registry merge)."""
    merged: Dict[str, Any] = {
        "counters": dict(base.get("counters", {})),
        "gauges": {k: dict(v) for k, v in base.get("gauges", {}).items()},
        "histograms": {
            k: {**v, "buckets": list(v["buckets"]), "counts": list(v["counts"])}
            for k, v in base.get("histograms", {}).items()
        },
        "series": {
            k: {**v, "times": list(v["times"]), "values": list(v["values"])}
            for k, v in base.get("series", {}).items()
        },
    }
    for key, value in other.get("counters", {}).items():
        merged["counters"][key] = merged["counters"].get(key, 0) + value
    for key, gauge in other.get("gauges", {}).items():
        old = merged["gauges"].get(key)
        merged["gauges"][key] = {
            "value": gauge["value"],
            "peak": max(gauge["peak"], old["peak"]) if old else gauge["peak"],
        }
    for key, hist in other.get("histograms", {}).items():
        old = merged["histograms"].get(key)
        if old is None:
            merged["histograms"][key] = {
                **hist,
                "buckets": list(hist["buckets"]),
                "counts": list(hist["counts"]),
            }
            continue
        if list(old["buckets"]) != list(hist["buckets"]):
            raise ObservabilityError(
                f"cannot merge histogram {key!r}: bucket bounds differ"
            )
        old["counts"] = [a + b for a, b in zip(old["counts"], hist["counts"])]
        old["count"] += hist["count"]
        old["sum"] += hist["sum"]
    for key, series in other.get("series", {}).items():
        old = merged["series"].get(key)
        if old is None:
            merged["series"][key] = {
                **series,
                "times": list(series["times"]),
                "values": list(series["values"]),
            }
        else:
            old["times"] = old["times"] + list(series["times"])
            old["values"] = old["values"] + list(series["values"])
            old["stride"] = max(old["stride"], series["stride"])
    return merged
