"""Human-readable rendering of metrics documents and traces.

Backs ``badabing-sim obs summary``: turns the JSON artifacts into the
report a person actually reads — provenance first, then headline totals,
then the slow spans — without any plotting dependency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_manifest(manifest: Dict[str, Any]) -> List[str]:
    lines = ["manifest:"]
    lines.append(f"  tool:       {manifest.get('tool', '?')}")
    lines.append(f"  seed:       {manifest.get('seed', '?')}")
    lines.append(f"  version:    {manifest.get('package_version', '?')}")
    digest = str(manifest.get("config_digest", ""))
    lines.append(f"  config:     {digest[:16]}…" if digest else "  config:     ?")
    sim_s = manifest.get("sim_seconds", 0.0)
    wall_s = manifest.get("wall_seconds", 0.0)
    rate = sim_s / wall_s if wall_s else 0.0
    lines.append(
        f"  time:       {sim_s:.1f}s simulated in {wall_s:.2f}s wall "
        f"({rate:.1f}x real time)"
    )
    events = manifest.get("events_processed", 0)
    eps = events / wall_s if wall_s else 0.0
    lines.append(f"  events:     {events} ({eps:,.0f}/s)")
    return lines


def render_snapshot(snapshot: Dict[str, Any], top: int = 20) -> List[str]:
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for key, value in ranked[:top]:
            lines.append(f"  {key:<56} {_fmt(value)}")
        if len(ranked) > top:
            lines.append(f"  … {len(ranked) - top} more")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            gauge = gauges[key]
            lines.append(
                f"  {key:<56} {_fmt(gauge['value'])} (peak {_fmt(gauge['peak'])})"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            hist = histograms[key]
            count = hist.get("count", 0)
            mean = hist["sum"] / count if count else 0.0
            lines.append(f"  {key}: n={count} mean={mean:.6g}")
            if count:
                lines.append(f"    {_sparkline(hist)}")
    series = snapshot.get("series", {})
    if series:
        lines.append("series:")
        for key in sorted(series):
            entry = series[key]
            n = len(entry.get("times", []))
            if n:
                peak = max(entry["values"])
                lines.append(
                    f"  {key}: {n} samples (stride {entry.get('stride', 1)}), "
                    f"peak {_fmt(peak)}"
                )
            else:
                lines.append(f"  {key}: empty")
    return lines


def _sparkline(hist: Dict[str, Any]) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    counts = hist.get("counts", [])
    peak = max(counts) if counts else 0
    if not peak:
        return ""
    cells = "".join(
        blocks[min(len(blocks) - 1, 1 + (len(blocks) - 2) * c // peak)] if c else blocks[0]
        for c in counts
    )
    bounds = hist.get("buckets", [])
    lo = bounds[0] if bounds else 0
    hi = bounds[-1] if bounds else 0
    return f"[{cells}] {lo:g}..{hi:g}+"


def aggregate_trace(lines_in: Iterable[Any]) -> Dict[str, Dict[str, float]]:
    """Aggregate a trace stream (JSONL strings or parsed dicts) into
    per-span-name ``{count, total_s, max_s}`` totals."""
    summary: Dict[str, Dict[str, float]] = {}
    for raw in lines_in:
        if isinstance(raw, dict):
            record = raw
        else:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
        if record.get("type") != "span" or record.get("dur") is None:
            continue
        entry = summary.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += record["dur"]
        entry["max_s"] = max(entry["max_s"], record["dur"])
    return summary


def render_trace_summary(lines_in: Iterable[Any], top: int = 15) -> List[str]:
    """Render a trace stream's span totals, slowest first."""
    summary = aggregate_trace(lines_in)
    if not summary:
        return []
    lines = ["spans (by total wall time):"]
    ranked = sorted(summary.items(), key=lambda kv: -kv[1]["total_s"])
    for name, entry in ranked[:top]:
        lines.append(
            f"  {name:<32} n={int(entry['count']):<5} "
            f"total={entry['total_s']:.3f}s max={entry['max_s']:.3f}s"
        )
    return lines


def slowest_spans(
    lines_in: Iterable[Any], top: int = 10
) -> List[Dict[str, Any]]:
    """The ``top`` individually slowest finished spans in a trace stream.

    Unlike :func:`aggregate_trace` (per-name totals), this keeps the raw
    span records — one hot outlier is visible even when its name's total
    is dwarfed by a chatty neighbour. Accepts JSONL strings or parsed
    dicts; unfinished spans (``dur`` null) and junk lines are skipped.
    """
    spans: List[Dict[str, Any]] = []
    for raw in lines_in:
        if isinstance(raw, dict):
            record = raw
        else:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
        if record.get("type") != "span" or record.get("dur") is None:
            continue
        spans.append(record)
    spans.sort(key=lambda span: -span["dur"])
    return spans[: max(0, top)]


def render_slowest_spans(lines_in: Iterable[Any], top: int = 10) -> List[str]:
    """Render the top-N slowest individual spans (``obs summary --slow``)."""
    ranked = slowest_spans(lines_in, top=top)
    if not ranked:
        return ["no finished spans in trace"]
    lines = [f"slowest {len(ranked)} spans:"]
    for rank, span in enumerate(ranked, start=1):
        attrs = span.get("attrs") or {}
        detail = " ".join(
            f"{key}={attrs[key]}" for key in sorted(attrs)
        )
        lines.append(
            f"  {rank:>2}. {span.get('name', '?'):<32} "
            f"{span['dur']:.6f}s t0={span.get('t0', 0.0):.3f}"
            + (f"  {detail}" if detail else "")
        )
    return lines


def render_summary(
    document: Dict[str, Any],
    trace_lines: Optional[Iterable[str]] = None,
) -> str:
    """Full ``obs summary`` report for one metrics document (+ trace)."""
    out: List[str] = []
    manifest = document.get("manifest")
    if manifest:
        out.extend(render_manifest(manifest))
    out.extend(render_snapshot(document.get("metrics", {})))
    if trace_lines is not None:
        out.extend(render_trace_summary(trace_lines))
    return "\n".join(out)


def summary_document(
    document: Dict[str, Any],
    trace_lines: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """Machine-readable twin of :func:`render_summary` (``--json``).

    Counters and gauges pass through; histograms and series are reduced to
    their headline statistics; the trace (if given) to per-span totals.
    """
    snapshot = document.get("metrics", {})
    histograms = {}
    for key, hist in snapshot.get("histograms", {}).items():
        count = hist.get("count", 0)
        histograms[key] = {
            "count": count,
            "mean": hist["sum"] / count if count else None,
        }
    series = {}
    for key, entry in snapshot.get("series", {}).items():
        values = entry.get("values", [])
        series[key] = {
            "samples": len(values),
            "stride": entry.get("stride", 1),
            "last": values[-1] if values else None,
            "peak": max(values) if values else None,
        }
    return {
        "manifest": document.get("manifest"),
        "counters": dict(snapshot.get("counters", {})),
        "gauges": {
            key: gauge.get("value") for key, gauge in snapshot.get("gauges", {}).items()
        },
        "histograms": histograms,
        "series": series,
        "spans": aggregate_trace(trace_lines) if trace_lines is not None else None,
    }


# ---------------------------------------------------------------------------
# Grouped (per-shard) rendering
# ---------------------------------------------------------------------------

def split_snapshot_by_label(
    snapshot: Dict[str, Any],
    group_keys: Iterable[str] = ("session", "cell"),
) -> "tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]":
    """Partition a merged snapshot into per-shard sub-snapshots.

    Fleet soaks and sweeps merge per-session/per-cell registries with a
    distinguishing series label (``session=session[3]``, ``cell=grid[0]``).
    This splits every instrument carrying one of ``group_keys`` into its
    shard's sub-snapshot; everything else (aggregated counters, shared
    gauges) lands in the returned ``shared`` snapshot. Both halves keep
    the original rendered keys, so each sub-snapshot is still valid input
    for :func:`render_snapshot`.
    """
    from repro.obs.export import parse_key

    keys = tuple(group_keys)

    def empty() -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}

    shared = empty()
    groups: Dict[str, Dict[str, Any]] = {}
    for section in ("counters", "gauges", "histograms", "series"):
        for key, value in snapshot.get(section, {}).items():
            _, labels = parse_key(key)
            group = next((labels[k] for k in keys if k in labels), None)
            target = shared if group is None else groups.setdefault(group, empty())
            target[section][key] = value
    return shared, groups


def group_label_path(label: str) -> str:
    """The path component of a standardized ``path/session[n]`` label.

    Controller runs label every shard ``<path>/session[<round>]``; plain
    fleet soaks use bare ``session[<i>]`` labels, which group as
    themselves (no path prefix, nothing to fold).
    """
    return label.split("/", 1)[0]


def split_snapshot_by_path(
    snapshot: Dict[str, Any],
    group_keys: Iterable[str] = ("session", "cell"),
) -> "tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]":
    """Like :func:`split_snapshot_by_label`, folded to one group per path.

    Shards sharing a ``path/`` label prefix merge into a single
    sub-snapshot (their rendered keys stay distinct — the full label is
    part of the key — so folding is a plain dict union).
    """
    shared, groups = split_snapshot_by_label(snapshot, group_keys)
    folded: Dict[str, Dict[str, Any]] = {}
    for label in sorted(groups):
        target = folded.setdefault(
            group_label_path(label),
            {"counters": {}, "gauges": {}, "histograms": {}, "series": {}},
        )
        for section, entries in groups[label].items():
            target[section].update(entries)
    return shared, folded


def render_grouped_summary(
    document: Dict[str, Any],
    trace_lines: Optional[Iterable[str]] = None,
    group_keys: Iterable[str] = ("session", "cell"),
    top: int = 10,
    by_path: bool = False,
) -> str:
    """``obs summary --by-label`` / ``--by-path``: one section per shard.

    ``by_path`` folds shards sharing a ``path/`` label prefix into one
    section per path (a controller run reads as its roster). Falls back
    to the flat report (with a note) when the snapshot has no
    shard-labeled instruments to group.
    """
    snapshot = document.get("metrics", {})
    if by_path:
        shared, groups = split_snapshot_by_path(snapshot, group_keys)
    else:
        shared, groups = split_snapshot_by_label(snapshot, group_keys)
    if not groups:
        return (
            "(no shard labels found — showing the flat summary)\n"
            + render_summary(document, trace_lines)
        )
    out: List[str] = []
    manifest = document.get("manifest")
    if manifest:
        out.extend(render_manifest(manifest))
    grouping = "path" if by_path else "/".join(group_keys)
    out.append(f"shards: {len(groups)} (grouped by {grouping})")
    for group in sorted(groups):
        out.append("")
        out.append(f"── {group} " + "─" * max(0, 40 - len(group)))
        out.extend(render_snapshot(groups[group], top=top))
    if any(shared[section] for section in shared):
        out.append("")
        out.append("── shared (aggregated across shards) " + "─" * 4)
        out.extend(render_snapshot(shared, top=top))
    if trace_lines is not None:
        out.append("")
        out.extend(render_trace_summary(trace_lines))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Accuracy-audit rendering
# ---------------------------------------------------------------------------

def _pct(value: Optional[float]) -> str:
    return "—" if value is None else f"{100 * value:.1f}%"


def render_scorecard(scorecard: Dict[str, Any]) -> List[str]:
    """Render an :class:`~repro.obs.audit.AccuracyScorecard` dict."""
    lines = ["accuracy scorecard:"]
    lines.append(
        f"  runs:              {scorecard.get('n_ok', 0)}/{scorecard.get('n_runs', 0)} ok, "
        f"{scorecard.get('n_acceptable', 0)} pass §5.4 validation"
    )
    lines.append(
        f"  |F̂−F|/F:           mean {_pct(scorecard.get('mean_frequency_rel_error'))}, "
        f"worst {_pct(scorecard.get('worst_frequency_rel_error'))}"
    )
    lines.append(
        f"  |D̂−D|/D:           mean {_pct(scorecard.get('mean_duration_rel_error'))}"
    )
    lines.append(
        f"  episode recall:    mean {_pct(scorecard.get('mean_episode_recall'))}"
    )
    rows = scorecard.get("rows", [])
    if rows:
        lines.append(
            f"  {'run':<28} {'F err':>8} {'D err':>8} {'recall':>8} "
            f"{'det/par/miss':>12} verdict"
        )
        for row in rows:
            label = str(row.get("label", "?"))[:28]
            if not row.get("ok"):
                lines.append(f"  {label:<28} FAILED: {row.get('error')}")
                continue
            episodes = (
                f"{row.get('detected', 0)}/{row.get('partially_sampled', 0)}"
                f"/{row.get('missed', 0)}"
            )
            if row.get("should_abort"):
                verdict = "abort"
            elif row.get("acceptable"):
                verdict = "accept"
            else:
                verdict = "reject"
            lines.append(
                f"  {label:<28} {_pct(row.get('frequency_rel_error')):>8} "
                f"{_pct(row.get('duration_rel_error')):>8} "
                f"{_pct(row.get('episode_recall')):>8} {episodes:>12} {verdict}"
            )
    return lines


def _render_run_audit(run: Dict[str, Any], index: int) -> List[str]:
    frequency = run.get("frequency", {})
    duration = run.get("duration_seconds", {})
    episode_audit = run.get("episode_audit", {})
    validation = run.get("validation", {})
    counts = episode_audit.get("counts", {})
    lines = [f"run {index} ({run.get('tool', '?')}):"]
    est_f = frequency.get("estimated")
    true_f = frequency.get("true")
    lines.append(
        f"  frequency:         F̂={f'{est_f:.6g}' if est_f is not None else '—':>10} "
        f"F={f'{true_f:.6g}' if true_f is not None else '—':>10} "
        f"err {_pct(frequency.get('rel_error'))}"
    )
    est_d = duration.get("estimated")
    true_d = duration.get("true")
    lines.append(
        f"  duration:          D̂={f'{est_d:.4f}s' if est_d is not None else '—':>10} "
        f"D={f'{true_d:.4f}s' if true_d is not None else '—':>10} "
        f"err {_pct(duration.get('rel_error'))}"
    )
    lines.append(
        f"  episodes:          {episode_audit.get('n_episodes', 0)} true — "
        f"{counts.get('detected', 0)} detected, "
        f"{counts.get('partially_sampled', 0)} partially sampled, "
        f"{counts.get('missed', 0)} missed "
        f"(recall {_pct(episode_audit.get('recall'))})"
    )
    by_status = episode_audit.get("duration_by_status", {})
    if by_status:
        lines.append(
            "  episode seconds:   "
            + ", ".join(
                f"{status} {by_status.get(status, 0.0):.3f}s"
                for status in ("detected", "partially_sampled", "missed")
            )
        )
    coverage = episode_audit.get("mean_sampling_coverage")
    if coverage is not None:
        lines.append(f"  sampling coverage: mean {_pct(coverage)} of episode slots probed")
    verdict = (
        "abort"
        if validation.get("should_abort")
        else ("accept" if validation.get("acceptable") else "reject")
    )
    lines.append(
        f"  validation:        {verdict} — "
        f"{validation.get('transitions', 0)} transitions, "
        f"violation rate {_pct(validation.get('violation_rate'))}, "
        f"asymmetry {_pct(validation.get('transition_asymmetry'))}, "
        f"stop={validation.get('should_stop')}"
    )
    convergence = run.get("convergence", {})
    n_points = len(convergence.get("t", []))
    if n_points:
        errors = [e for e in convergence.get("f_rel_error", []) if e is not None]
        final = f", final F err {_pct(errors[-1])}" if errors else ""
        lines.append(f"  convergence:       {n_points} points{final}")
    return lines


def render_audit(document: Dict[str, Any], max_runs: int = 10) -> str:
    """Full ``obs audit`` report for one audit document."""
    out = render_scorecard(document.get("scorecard", {}))
    runs = document.get("runs", [])
    for index, run in enumerate(runs[:max_runs]):
        out.append("")
        out.extend(_render_run_audit(run, index))
    if len(runs) > max_runs:
        out.append(f"… {len(runs) - max_runs} more runs (see the JSON document)")
    return "\n".join(out)
