"""Human-readable rendering of metrics documents and traces.

Backs ``badabing-sim obs summary``: turns the JSON artifacts into the
report a person actually reads — provenance first, then headline totals,
then the slow spans — without any plotting dependency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_manifest(manifest: Dict[str, Any]) -> List[str]:
    lines = ["manifest:"]
    lines.append(f"  tool:       {manifest.get('tool', '?')}")
    lines.append(f"  seed:       {manifest.get('seed', '?')}")
    lines.append(f"  version:    {manifest.get('package_version', '?')}")
    digest = str(manifest.get("config_digest", ""))
    lines.append(f"  config:     {digest[:16]}…" if digest else "  config:     ?")
    sim_s = manifest.get("sim_seconds", 0.0)
    wall_s = manifest.get("wall_seconds", 0.0)
    rate = sim_s / wall_s if wall_s else 0.0
    lines.append(
        f"  time:       {sim_s:.1f}s simulated in {wall_s:.2f}s wall "
        f"({rate:.1f}x real time)"
    )
    events = manifest.get("events_processed", 0)
    eps = events / wall_s if wall_s else 0.0
    lines.append(f"  events:     {events} ({eps:,.0f}/s)")
    return lines


def render_snapshot(snapshot: Dict[str, Any], top: int = 20) -> List[str]:
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for key, value in ranked[:top]:
            lines.append(f"  {key:<56} {_fmt(value)}")
        if len(ranked) > top:
            lines.append(f"  … {len(ranked) - top} more")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            gauge = gauges[key]
            lines.append(
                f"  {key:<56} {_fmt(gauge['value'])} (peak {_fmt(gauge['peak'])})"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            hist = histograms[key]
            count = hist.get("count", 0)
            mean = hist["sum"] / count if count else 0.0
            lines.append(f"  {key}: n={count} mean={mean:.6g}")
            if count:
                lines.append(f"    {_sparkline(hist)}")
    series = snapshot.get("series", {})
    if series:
        lines.append("series:")
        for key in sorted(series):
            entry = series[key]
            n = len(entry.get("times", []))
            if n:
                peak = max(entry["values"])
                lines.append(
                    f"  {key}: {n} samples (stride {entry.get('stride', 1)}), "
                    f"peak {_fmt(peak)}"
                )
            else:
                lines.append(f"  {key}: empty")
    return lines


def _sparkline(hist: Dict[str, Any]) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    counts = hist.get("counts", [])
    peak = max(counts) if counts else 0
    if not peak:
        return ""
    cells = "".join(
        blocks[min(len(blocks) - 1, 1 + (len(blocks) - 2) * c // peak)] if c else blocks[0]
        for c in counts
    )
    bounds = hist.get("buckets", [])
    lo = bounds[0] if bounds else 0
    hi = bounds[-1] if bounds else 0
    return f"[{cells}] {lo:g}..{hi:g}+"


def render_trace_summary(lines_in: Iterable[Any], top: int = 15) -> List[str]:
    """Aggregate a trace stream (JSONL strings or parsed dicts) into totals."""
    summary: Dict[str, Dict[str, float]] = {}
    for raw in lines_in:
        if isinstance(raw, dict):
            record = raw
        else:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
        if record.get("type") != "span" or record.get("dur") is None:
            continue
        entry = summary.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += record["dur"]
        entry["max_s"] = max(entry["max_s"], record["dur"])
    if not summary:
        return []
    lines = ["spans (by total wall time):"]
    ranked = sorted(summary.items(), key=lambda kv: -kv[1]["total_s"])
    for name, entry in ranked[:top]:
        lines.append(
            f"  {name:<32} n={int(entry['count']):<5} "
            f"total={entry['total_s']:.3f}s max={entry['max_s']:.3f}s"
        )
    return lines


def render_summary(
    document: Dict[str, Any],
    trace_lines: Optional[Iterable[str]] = None,
) -> str:
    """Full ``obs summary`` report for one metrics document (+ trace)."""
    out: List[str] = []
    manifest = document.get("manifest")
    if manifest:
        out.extend(render_manifest(manifest))
    out.extend(render_snapshot(document.get("metrics", {})))
    if trace_lines is not None:
        out.extend(render_trace_summary(trace_lines))
    return "\n".join(out)
