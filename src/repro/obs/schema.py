"""Schema validation for exported metrics documents and trace files.

Zero-dependency structural validation (no jsonschema): each validator
returns a list of human-readable problems (empty == valid), and the
``check_*`` wrappers raise :class:`~repro.errors.ObservabilityError`
instead. CI runs these over the artifacts of an instrumented measure so
a malformed emitter fails the build, not a downstream dashboard.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.errors import ObservabilityError
from repro.obs.audit import AUDIT_SCHEMA, EPISODE_STATUSES
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.tracing import TRACE_SCHEMA

#: Schema identifier of the combined manifest+metrics document.
METRICS_SCHEMA = "repro.obs.metrics/1"

_MANIFEST_FIELDS = {
    "schema": str,
    "tool": str,
    "seed": int,
    "config_digest": str,
    "package_version": str,
    "sim_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_processed": int,
    "metrics": dict,
}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_manifest(manifest: Any, where: str = "manifest") -> List[str]:
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return [f"{where}: expected an object, got {type(manifest).__name__}"]
    for name, types in _MANIFEST_FIELDS.items():
        if name not in manifest:
            problems.append(f"{where}: missing field {name!r}")
        elif not isinstance(manifest[name], types):
            problems.append(
                f"{where}.{name}: expected {types}, got {type(manifest[name]).__name__}"
            )
    if manifest.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(
            f"{where}.schema: expected {MANIFEST_SCHEMA!r}, got {manifest.get('schema')!r}"
        )
    for key, value in manifest.get("metrics", {}).items() if isinstance(manifest.get("metrics"), dict) else ():
        if not _is_number(value):
            problems.append(f"{where}.metrics[{key!r}]: expected a number")
    return problems


def validate_snapshot(snapshot: Any, where: str = "metrics") -> List[str]:
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [f"{where}: expected an object, got {type(snapshot).__name__}"]
    for section in ("counters", "gauges", "histograms", "series"):
        if section not in snapshot:
            problems.append(f"{where}: missing section {section!r}")
        elif not isinstance(snapshot[section], dict):
            problems.append(f"{where}.{section}: expected an object")
    for key, value in snapshot.get("counters", {}).items():
        if not _is_number(value):
            problems.append(f"{where}.counters[{key!r}]: expected a number")
    for key, gauge in snapshot.get("gauges", {}).items():
        if not isinstance(gauge, dict) or not {"value", "peak"} <= set(gauge):
            problems.append(f"{where}.gauges[{key!r}]: expected {{value, peak}}")
    for key, hist in snapshot.get("histograms", {}).items():
        if not isinstance(hist, dict):
            problems.append(f"{where}.histograms[{key!r}]: expected an object")
            continue
        buckets, counts = hist.get("buckets"), hist.get("counts")
        if not isinstance(buckets, list) or not isinstance(counts, list):
            problems.append(f"{where}.histograms[{key!r}]: need buckets + counts lists")
            continue
        if len(counts) != len(buckets) + 1:
            problems.append(
                f"{where}.histograms[{key!r}]: counts must have len(buckets)+1 slots"
            )
        if any(later <= earlier for later, earlier in zip(buckets[1:], buckets)):
            problems.append(f"{where}.histograms[{key!r}]: buckets not increasing")
        if hist.get("count") != sum(counts):
            problems.append(
                f"{where}.histograms[{key!r}]: count != sum(counts)"
            )
    for key, series in snapshot.get("series", {}).items():
        if not isinstance(series, dict):
            problems.append(f"{where}.series[{key!r}]: expected an object")
            continue
        times, values = series.get("times"), series.get("values")
        if not isinstance(times, list) or not isinstance(values, list):
            problems.append(f"{where}.series[{key!r}]: need times + values lists")
        elif len(times) != len(values):
            problems.append(f"{where}.series[{key!r}]: times/values length mismatch")
        elif any(b < a for a, b in zip(times, times[1:])):
            problems.append(f"{where}.series[{key!r}]: times not monotonic")
    return problems


def validate_metrics_document(document: Any) -> List[str]:
    """Validate a combined ``{"schema", "manifest", "metrics"}`` document."""
    if not isinstance(document, dict):
        return [f"document: expected an object, got {type(document).__name__}"]
    problems: List[str] = []
    if document.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"document.schema: expected {METRICS_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if "manifest" in document and document["manifest"] is not None:
        problems.extend(validate_manifest(document["manifest"]))
    if "metrics" not in document:
        problems.append("document: missing 'metrics' snapshot")
    else:
        problems.extend(validate_snapshot(document["metrics"]))
    return problems


_SCORECARD_ROW_FIELDS = ("label", "ok", "n_episodes", "detected", "partially_sampled", "missed")

#: Parallel arrays every exported convergence block must carry.
_CONVERGENCE_ARRAYS = (
    "t",
    "n_experiments",
    "f_hat",
    "f_rel_error",
    "d_hat_seconds",
    "d_rel_error",
    "violation_rate",
    "transition_asymmetry",
    "estimated_relative_error",
    "should_stop",
    "should_abort",
)


def _validate_run_audit(run: Any, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(run, dict):
        return [f"{where}: expected an object, got {type(run).__name__}"]
    for name in ("tool", "slot_width", "frequency", "duration_seconds",
                 "episode_audit", "validation", "convergence"):
        if name not in run:
            problems.append(f"{where}: missing field {name!r}")
    episode_audit = run.get("episode_audit")
    if isinstance(episode_audit, dict):
        counts = episode_audit.get("counts")
        if not isinstance(counts, dict) or set(counts) != set(EPISODE_STATUSES):
            problems.append(
                f"{where}.episode_audit.counts: expected exactly {sorted(EPISODE_STATUSES)}"
            )
        episodes = episode_audit.get("episodes")
        if not isinstance(episodes, list):
            problems.append(f"{where}.episode_audit.episodes: expected a list")
        else:
            if isinstance(counts, dict) and len(episodes) != sum(
                v for v in counts.values() if isinstance(v, int)
            ):
                problems.append(
                    f"{where}.episode_audit: counts do not add up to the episode list"
                )
            for index, episode in enumerate(episodes):
                if not isinstance(episode, dict):
                    problems.append(f"{where}.episode_audit.episodes[{index}]: expected an object")
                elif episode.get("status") not in EPISODE_STATUSES:
                    problems.append(
                        f"{where}.episode_audit.episodes[{index}].status: "
                        f"got {episode.get('status')!r}"
                    )
    convergence = run.get("convergence")
    if isinstance(convergence, dict):
        lengths = set()
        for name in _CONVERGENCE_ARRAYS:
            array = convergence.get(name)
            if not isinstance(array, list):
                problems.append(f"{where}.convergence.{name}: expected a list")
            else:
                lengths.add(len(array))
        if len(lengths) > 1:
            problems.append(f"{where}.convergence: arrays have mismatched lengths")
        times = convergence.get("t")
        if isinstance(times, list) and any(b < a for a, b in zip(times, times[1:])):
            problems.append(f"{where}.convergence.t: times not monotonic")
    return problems


def validate_audit_document(document: Any) -> List[str]:
    """Validate a ``{"schema", "scorecard", "runs"}`` accuracy-audit doc."""
    if not isinstance(document, dict):
        return [f"document: expected an object, got {type(document).__name__}"]
    problems: List[str] = []
    if document.get("schema") != AUDIT_SCHEMA:
        problems.append(
            f"document.schema: expected {AUDIT_SCHEMA!r}, got {document.get('schema')!r}"
        )
    scorecard = document.get("scorecard")
    if not isinstance(scorecard, dict):
        problems.append("document: missing 'scorecard' object")
    else:
        rows = scorecard.get("rows")
        if not isinstance(rows, list):
            problems.append("scorecard.rows: expected a list")
        else:
            if scorecard.get("n_runs") != len(rows):
                problems.append("scorecard.n_runs: does not match len(rows)")
            for index, row in enumerate(rows):
                if not isinstance(row, dict):
                    problems.append(f"scorecard.rows[{index}]: expected an object")
                    continue
                for name in _SCORECARD_ROW_FIELDS:
                    if name not in row:
                        problems.append(f"scorecard.rows[{index}]: missing field {name!r}")
    runs = document.get("runs")
    if not isinstance(runs, list):
        problems.append("document: missing 'runs' list")
    else:
        for index, run in enumerate(runs):
            problems.extend(_validate_run_audit(run, f"runs[{index}]"))
    return problems


def load_audit_document(path) -> Dict[str, Any]:
    """Read + validate an audit document, raising on schema problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read audit document {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: invalid JSON ({exc.msg})")
    check(validate_audit_document(document), str(path))
    return document


def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """Validate a trace JSONL stream (meta line + span/event records)."""
    problems: List[str] = []
    saw_meta = False
    count = 0
    for number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        count += 1
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"trace line {number}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            problems.append(f"trace line {number}: expected an object with 'type'")
            continue
        kind = record["type"]
        if kind == "meta":
            saw_meta = True
            if record.get("schema") != TRACE_SCHEMA:
                problems.append(
                    f"trace line {number}: meta schema is {record.get('schema')!r}, "
                    f"expected {TRACE_SCHEMA!r}"
                )
        elif kind in ("span", "event"):
            for name, types in (
                ("name", str),
                ("t0", (int, float)),
                ("dur", (int, float)),
                ("attrs", dict),
            ):
                if name not in record or not isinstance(record[name], types):
                    problems.append(
                        f"trace line {number}: {kind} field {name!r} missing or mistyped"
                    )
            if _is_number(record.get("dur")) and record["dur"] < 0:
                problems.append(f"trace line {number}: negative duration")
        else:
            problems.append(f"trace line {number}: unknown record type {kind!r}")
    if count and not saw_meta:
        problems.append("trace: no meta line found")
    return problems


def validate_trace_file(path) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return validate_trace_lines(handle)
    except OSError as exc:
        return [f"trace: cannot read {path}: {exc}"]


def check(problems: List[str], what: str) -> None:
    """Raise :class:`ObservabilityError` if any problems were found."""
    if problems:
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ObservabilityError(f"{what} failed validation: {preview}{more}")


def load_metrics_document(path) -> Dict[str, Any]:
    """Read + validate a metrics document, raising on schema problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read metrics document {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: invalid JSON ({exc.msg})")
    check(validate_metrics_document(document), str(path))
    return document
