"""Declarative alert rules evaluated over live registry snapshots.

The paper's §5.4 argument is that a measurement must be validated *while
it runs*; this module is the operational version of that stance. An
:class:`AlertRules` engine holds a list of declarative
:class:`AlertRule` thresholds and is handed each periodic registry
snapshot by the :class:`~repro.obs.export.TelemetryExporter`. Rules can
watch a raw value, a per-second rate, a ratio of two metrics, or
staleness (a metric that has stopped advancing — the live analogue of a
validator that never converges). Transitions produce structured
:class:`AlertEvent` records that land in the exporter's snapshot stream
and (when a tracer is attached) as ``alert.fired`` / ``alert.resolved``
tracer events; the number of currently-firing rules is published as the
``live.alerts_active`` gauge on the exporter's *own* side registry —
never on the monitored registry, whose snapshot digest must stay
byte-identical with and without export enabled.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.artifacts import open_artifact

#: Schema identifier for serialized rule lists.
ALERT_RULES_SCHEMA = "repro.obs.alerts/1"

#: Supported rule kinds (see :class:`AlertRule`).
KINDS = ("value", "rate", "ratio", "stale")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold over a snapshot metric.

    Attributes
    ----------
    name:
        Unique rule name (appears in events and the dashboard).
    metric:
        Snapshot key to watch — either a fully-labeled key as rendered by
        :func:`~repro.obs.metrics.render_key` (``live.wire_errors{role=reflector}``)
        or a bare instrument name, which sums every labeled variant.
        Counters and gauges resolve to their value, series to their last
        sample, histograms to their observation count.
    kind:
        ``"value"`` compares the metric directly; ``"rate"`` compares its
        per-second increase between evaluations; ``"ratio"`` divides it
        by ``denominator`` (0/0 counts as 0); ``"stale"`` fires when the
        metric has not changed for more than ``threshold`` seconds of
        wall time (``op`` is ignored) — e.g. a validator that stopped
        making progress before its convergence deadline.
    op / threshold:
        Comparison applied to the derived quantity; the rule breaches
        when ``op(quantity, threshold)`` is true.
    denominator:
        Second metric for ``ratio`` rules (same addressing as ``metric``).
    for_intervals:
        Consecutive breaching evaluations required before the rule fires
        (debounce; 1 = fire immediately).
    severity / description:
        Carried verbatim into events and the exposition.
    """

    name: str
    metric: str
    kind: str = "value"
    op: str = ">"
    threshold: float = 0.0
    denominator: Optional[str] = None
    for_intervals: int = 1
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.metric:
            raise ObservabilityError("alert rule needs a name and a metric")
        if self.kind not in KINDS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )
        if self.op not in _OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.kind == "ratio" and not self.denominator:
            raise ObservabilityError(
                f"alert rule {self.name!r}: ratio rules need a denominator"
            )
        if self.for_intervals < 1:
            raise ObservabilityError(
                f"alert rule {self.name!r}: for_intervals must be >= 1"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "threshold": self.threshold,
            "denominator": self.denominator,
            "for_intervals": self.for_intervals,
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AlertRule":
        if not isinstance(raw, dict):
            raise ObservabilityError(
                f"alert rule: expected an object, got {type(raw).__name__}"
            )
        known = {
            "name", "metric", "kind", "op", "threshold", "denominator",
            "for_intervals", "severity", "description",
        }
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ObservabilityError(
                f"alert rule {raw.get('name', '?')!r}: unknown fields {unknown}"
            )
        return cls(**raw)


@dataclass
class AlertEvent:
    """One firing/resolved transition, emitted into the snapshot stream."""

    rule: str
    state: str  #: ``"firing"`` or ``"resolved"``
    value: Optional[float]
    threshold: float
    wall: float
    severity: str = "warning"
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "wall": self.wall,
            "severity": self.severity,
            "description": self.description,
        }


@dataclass
class _RuleState:
    """Mutable evaluation state the engine keeps per rule."""

    firing: bool = False
    breaches: int = 0
    last_value: Optional[float] = None
    last_wall: Optional[float] = None
    #: For stale rules: wall time of the last observed change.
    last_change_wall: Optional[float] = None
    fired_wall: Optional[float] = None
    events: int = 0


def lookup_metric(snapshot: Dict[str, Any], metric: str) -> Optional[float]:
    """Resolve a metric address against a snapshot document.

    A fully-labeled key is looked up exactly; a bare name sums every
    variant whose key is the name or ``name{...}``. Returns None when the
    metric does not exist (rules treat missing metrics as non-breaching).
    """
    exact = "{" in metric

    def scan(section: Dict[str, Any], extract) -> Optional[float]:
        if exact or metric in section:
            entry = section.get(metric)
            return None if entry is None else extract(entry)
        total: Optional[float] = None
        prefix = metric + "{"
        for key, entry in section.items():
            if key == metric or key.startswith(prefix):
                value = extract(entry)
                if value is not None:
                    total = value if total is None else total + value
        return total

    found = scan(snapshot.get("counters", {}), lambda v: float(v))
    if found is not None:
        return found
    found = scan(snapshot.get("gauges", {}), lambda g: float(g["value"]))
    if found is not None:
        return found
    found = scan(
        snapshot.get("series", {}),
        lambda s: float(s["values"][-1]) if s.get("values") else None,
    )
    if found is not None:
        return found
    return scan(snapshot.get("histograms", {}), lambda h: float(h.get("count", 0)))


class AlertRules:
    """Evaluate a rule list against successive snapshots, tracking state.

    ``registry`` is the engine's *own* registry (usually the exporter's
    side registry): it receives the ``live.alerts_active`` gauge and
    per-rule ``alerts.events`` counters. ``tracer`` (optional) receives
    an ``alert.fired`` / ``alert.resolved`` event per transition.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] = (),
        registry=None,
        tracer=None,
    ):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate alert rule names in {names}")
        self.rules = list(rules)
        self.registry = registry
        self.tracer = tracer
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self.events_total = 0

    # ------------------------------------------------------------- evaluation
    def _quantity(
        self, rule: AlertRule, state: _RuleState, snapshot: Dict[str, Any], wall: float
    ) -> Optional[float]:
        value = lookup_metric(snapshot, rule.metric)
        if rule.kind == "value":
            return value
        if rule.kind == "ratio":
            if value is None:
                return None
            denominator = lookup_metric(snapshot, rule.denominator)
            if denominator is None or denominator == 0.0:
                return 0.0 if value == 0.0 else float("inf")
            return value / denominator
        if rule.kind == "rate":
            previous_value, previous_wall = state.last_value, state.last_wall
            state.last_value, state.last_wall = value, wall
            if value is None or previous_value is None or previous_wall is None:
                return None
            elapsed = wall - previous_wall
            if elapsed <= 0.0:
                return None
            return (value - previous_value) / elapsed
        # stale: seconds since the watched value last changed.
        if value is None:
            return None
        if state.last_change_wall is None or value != state.last_value:
            state.last_change_wall = wall
        state.last_value = value
        return wall - state.last_change_wall

    def evaluate(self, snapshot: Dict[str, Any], wall: float) -> List[AlertEvent]:
        """One evaluation pass; returns the firing/resolved transitions."""
        events: List[AlertEvent] = []
        for rule in self.rules:
            state = self._states[rule.name]
            quantity = self._quantity(rule, state, snapshot, wall)
            if quantity is None:
                breach = False
            elif rule.kind == "stale":
                breach = quantity > rule.threshold
            else:
                breach = _OPS[rule.op](quantity, rule.threshold)
            state.breaches = state.breaches + 1 if breach else 0
            if not state.firing and state.breaches >= rule.for_intervals:
                state.firing = True
                state.fired_wall = wall
                events.append(self._transition(rule, "firing", quantity, wall))
            elif state.firing and not breach:
                state.firing = False
                state.fired_wall = None
                events.append(self._transition(rule, "resolved", quantity, wall))
        if self.registry is not None and self.registry.enabled:
            self.registry.gauge("live.alerts_active").set(float(len(self.active)))
        return events

    def _transition(
        self, rule: AlertRule, state: str, value: Optional[float], wall: float
    ) -> AlertEvent:
        event = AlertEvent(
            rule=rule.name,
            state=state,
            value=value,
            threshold=rule.threshold,
            wall=wall,
            severity=rule.severity,
            description=rule.description,
        )
        self._states[rule.name].events += 1
        self.events_total += 1
        if self.registry is not None and self.registry.enabled:
            self.registry.counter("alerts.events", rule=rule.name, state=state).inc()
        if self.tracer is not None:
            self.tracer.event(
                f"alert.{'fired' if state == 'firing' else 'resolved'}",
                rule=rule.name,
                value=value,
                threshold=rule.threshold,
                severity=rule.severity,
            )
        return event

    # --------------------------------------------------------------- inspection
    @property
    def active(self) -> List[str]:
        """Names of currently-firing rules (rule order)."""
        return [rule.name for rule in self.rules if self._states[rule.name].firing]

    def state_document(self) -> List[Dict[str, Any]]:
        """Per-rule state for the ``/sessions`` endpoint and dashboards."""
        return [
            {
                "rule": rule.name,
                "metric": rule.metric,
                "firing": self._states[rule.name].firing,
                "since": self._states[rule.name].fired_wall,
                "events": self._states[rule.name].events,
                "severity": rule.severity,
            }
            for rule in self.rules
        ]


def default_fleet_rules(
    convergence_deadline: float = 30.0,
    rejected_ratio: float = 0.5,
) -> List[AlertRule]:
    """The stock rule set a fleet soak / reflector deployment starts from.

    * ``wire-errors`` — any sustained rate of undecodable datagrams;
    * ``admission-rejected`` — more than ``rejected_ratio`` of HELLOs
      bounced relative to admitted sessions (the fleet is saturated);
    * ``validator-stalled`` — the live running-F̂ series stopped
      advancing for ``convergence_deadline`` seconds while sessions are
      still active (§5.4 validation cannot converge).
    """
    return [
        AlertRule(
            name="wire-errors",
            metric="live.wire_errors",
            kind="rate",
            op=">",
            threshold=0.0,
            severity="critical",
            description="reflector is receiving undecodable datagrams",
        ),
        AlertRule(
            name="admission-rejected",
            metric="live.admission_rejected",
            kind="ratio",
            denominator="live.sessions",
            op=">",
            threshold=rejected_ratio,
            severity="warning",
            description="fleet is bouncing a large share of HELLOs",
        ),
        AlertRule(
            name="validator-stalled",
            metric="live.frequency",
            kind="stale",
            threshold=convergence_deadline,
            severity="warning",
            description="live §5.4 validation stopped making progress",
        ),
    ]


def controller_alert_rules(
    stall_deadline: float = 30.0,
    busy_ratio: float = 0.5,
) -> List[AlertRule]:
    """Alert rules for an adaptive fleet-controller run.

    * ``controller-busy-storm`` — more than ``busy_ratio`` of launches
      bounced on BUSY backpressure (the roster's reflectors are
      saturated and the budget is mostly idling in backoff);
    * ``controller-stalled`` — no session completed for
      ``stall_deadline`` seconds (paths neither converging nor failing);
    * ``controller-failures`` — any session failed outright (non-BUSY).
    """
    return [
        AlertRule(
            name="controller-busy-storm",
            metric="controller.busy_deferred",
            kind="ratio",
            denominator="controller.launches",
            op=">",
            threshold=busy_ratio,
            severity="warning",
            description="most controller launches are bouncing on BUSY",
        ),
        AlertRule(
            name="controller-stalled",
            metric="controller.completions",
            kind="stale",
            threshold=stall_deadline,
            severity="warning",
            description="controller stopped completing sessions",
        ),
        AlertRule(
            name="controller-failures",
            metric="controller.failures",
            kind="value",
            op=">",
            threshold=0.0,
            severity="critical",
            description="a controller-launched session failed outright",
        ),
    ]


def validate_rules_document(document: Any) -> List[str]:
    """Structural validation for a serialized rules file (list of problems)."""
    if not isinstance(document, dict):
        return [f"rules: expected an object, got {type(document).__name__}"]
    problems: List[str] = []
    if document.get("schema") != ALERT_RULES_SCHEMA:
        problems.append(
            f"rules.schema: expected {ALERT_RULES_SCHEMA!r}, got {document.get('schema')!r}"
        )
    rules = document.get("rules")
    if not isinstance(rules, list):
        return problems + ["rules: missing 'rules' list"]
    for index, raw in enumerate(rules):
        try:
            AlertRule.from_dict(raw)
        except (ObservabilityError, TypeError) as exc:
            problems.append(f"rules[{index}]: {exc}")
    return problems


def load_alert_rules(path) -> List[AlertRule]:
    """Read a ``{"schema", "rules": [...]}`` JSON file into rule objects."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read alert rules {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: invalid JSON ({exc.msg})")
    problems = validate_rules_document(document)
    if problems:
        raise ObservabilityError(
            f"{path} failed validation: " + "; ".join(problems[:5])
        )
    return [AlertRule.from_dict(raw) for raw in document["rules"]]


def write_alert_rules(path, rules: Sequence[AlertRule]) -> None:
    """Serialize a rule list as the JSON document :func:`load_alert_rules` reads."""
    with open_artifact(path, "alert rules") as handle:
        json.dump(
            {
                "schema": ALERT_RULES_SCHEMA,
                "rules": [rule.to_dict() for rule in rules],
            },
            handle,
            indent=2,
        )
        handle.write("\n")
