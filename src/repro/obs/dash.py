"""Terminal fleet dashboard: render ``/sessions`` rollups as a live table.

One renderer, two feeds. ``repro dash --url http://host:port`` polls a
running :class:`~repro.obs.export.TelemetryExporter`'s ``/sessions``
endpoint; ``repro dash --replay soak.ndjson`` replays a recorded export
snapshot stream offline — same frames, no live endpoint required. The
frame shows per-session rows (state, running F̂ and its drift, D̂,
§5.4 violation rate, retained samples, last sample time), the global
drop-by-cause counters, fleet admission/eviction totals, and the firing
alert rules.

Pure functions over plain dicts: everything here renders a
``repro.obs.sessions/1`` document (or derives one from a
``repro.obs.export/1`` record), so tests drive it with synthetic
documents and no sockets.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.export import read_export_records, sessions_document

#: ANSI clear-screen + home prefix used between live frames.
CLEAR = "\x1b[2J\x1b[H"

#: Fleet counters surfaced on the fleet status line, in display order.
_FLEET_COUNTERS = (
    ("admitted", "live.sessions"),
    ("rejected", "live.admission_rejected"),
    ("evicted", "live.evicted"),
    ("rate-limited", "live.rate_limited"),
    ("wire-errors", "live.wire_errors"),
)


def _fmt(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.{digits}f}"


def _session_state(row: Dict[str, Any]) -> str:
    if row.get("f_hat") is None:
        return "waiting"
    delta = row.get("f_delta")
    if delta is None:
        return "warmup"
    if abs(delta) < 1e-9:
        return "steady"
    return "converging"


def _row_alerts(row: Dict[str, Any], alerts: List[Dict[str, Any]]) -> str:
    """Firing rules whose watched metric is scoped to this session row."""
    label = row.get("label", "")
    names = [
        a["rule"]
        for a in alerts
        if a.get("firing") and label and label in str(a.get("metric", ""))
    ]
    return ",".join(names) if names else "-"


def dashboard_lines(document: Dict[str, Any]) -> List[str]:
    """Render one ``repro.obs.sessions/1`` document as table lines."""
    meta = document.get("meta") or {}
    alerts = document.get("alerts") or []
    firing = [a for a in alerts if a.get("firing")]
    sessions = document.get("sessions") or []
    lines: List[str] = []

    tool = meta.get("tool", "fleet")
    seq = document.get("seq")
    uptime = document.get("uptime")
    head = f"{tool} dashboard"
    if seq is not None:
        head += f" · seq {seq}"
    if uptime is not None:
        head += f" · up {uptime:.1f}s"
    head += f" · {len(sessions)} session{'s' if len(sessions) != 1 else ''}"
    lines.append(head)

    if firing:
        for alert in firing:
            since = alert.get("since")
            suffix = f" since {since:.0f}" if isinstance(since, (int, float)) else ""
            lines.append(f"ALERT [{alert.get('severity', '?')}] {alert['rule']}{suffix}")
    else:
        lines.append("alerts: none firing")
    lines.append("")

    columns = ("session", "state", "F^", "dF^", "D^(s)", "viol", "samples", "last t", "alerts")
    rows = [
        (
            str(row.get("label", "?")),
            _session_state(row),
            _fmt(row.get("f_hat")),
            _fmt(row.get("f_delta"), 5),
            _fmt(row.get("d_hat_seconds"), 3),
            _fmt(row.get("violation_rate"), 3),
            _fmt(row.get("samples")),
            _fmt(row.get("last_t"), 1),
            _row_alerts(row, alerts),
        )
        for row in sessions
    ]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rows)) if rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if not rows:
        lines.append("(no session telemetry yet)")
    lines.append("")

    drops = document.get("drops") or {}
    if drops:
        lines.append(
            "drops: " + "  ".join(f"{cause}={_fmt(count)}" for cause, count in drops.items())
        )
    counters = document.get("counters") or {}
    gauges = document.get("gauges") or {}
    fleet_bits = []
    if "live.sessions_active" in gauges:
        fleet_bits.append(f"active={_fmt(gauges['live.sessions_active'])}")
    for title, counter in _FLEET_COUNTERS:
        if counter in counters:
            fleet_bits.append(f"{title}={_fmt(counters[counter])}")
    if fleet_bits:
        lines.append("fleet: " + "  ".join(fleet_bits))
    return lines


def render_frame(document: Dict[str, Any]) -> str:
    return "\n".join(dashboard_lines(document)) + "\n"


def document_from_export_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Derive the dashboard's sessions document from one export record."""
    if not isinstance(record, dict) or "metrics" not in record:
        raise ObservabilityError("export record has no 'metrics' snapshot")
    alerts = record.get("alerts") or {}
    return sessions_document(
        record["metrics"],
        alerts=alerts.get("state") or [],
        meta=record.get("meta") or {},
        seq=record.get("seq"),
        uptime=record.get("uptime"),
        wall=record.get("wall"),
    )


def replay_documents(path) -> Iterator[Dict[str, Any]]:
    """Sessions documents for every record in a recorded export stream."""
    records = read_export_records(path)
    if not records:
        raise ObservabilityError(f"{path}: no export records to replay")
    for record in records:
        yield document_from_export_record(record)


def fetch_sessions(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``<url>/sessions`` from a live exporter endpoint."""
    target = url.rstrip("/") + "/sessions"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ObservabilityError(f"cannot fetch {target}: {exc}")
