"""Wall-clock tracing spans (perf_counter-based) emitted as JSONL.

A :class:`Tracer` records nested spans around the expensive phases of a
run — building the testbed, starting traffic, the simulator event loop,
the probe-log join, estimation, validation — so performance cliffs show
up as a named span instead of a mysterious slow run. Spans carry
wall-clock timings and are therefore **not** deterministic across runs;
deterministic data belongs in :mod:`repro.obs.metrics`.

Usage::

    tracer = Tracer(tool="badabing")
    with trace_span(tracer, "sim.run", seed=7):
        sim.run(until=...)
    tracer.write_jsonl("t.jsonl")

``trace_span(None, ...)`` is a supported no-op, so call sites never need
to branch on whether tracing is enabled.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Schema identifier stamped into the trace meta line.
TRACE_SCHEMA = "repro.obs.trace/1"


class Tracer:
    """In-memory span collector with a JSONL exporter.

    Spans nest via an explicit stack: a span started while another is
    open records the open span's name as its ``parent``. Timestamps are
    seconds since the tracer's construction (``perf_counter`` deltas),
    which keeps the file self-contained and diffable.
    """

    def __init__(self, **meta: Any):
        self.meta: Dict[str, Any] = dict(meta)
        self.spans: List[Dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self._stack: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------ spans
    def start(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        span = {
            "type": "span",
            "name": name,
            "t0": time.perf_counter() - self._epoch,
            "dur": None,
            "parent": self._stack[-1]["name"] if self._stack else None,
            "attrs": dict(attrs) if attrs else {},
        }
        self._stack.append(span)
        return span

    def finish(self, span: Dict[str, Any]) -> None:
        span["dur"] = time.perf_counter() - self._epoch - span["t0"]
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order finish
            self._stack.remove(span)
        self.spans.append(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) marker."""
        self.spans.append(
            {
                "type": "event",
                "name": name,
                "t0": time.perf_counter() - self._epoch,
                "dur": 0.0,
                "parent": self._stack[-1]["name"] if self._stack else None,
                "attrs": dict(attrs),
            }
        )

    # ----------------------------------------------------------------- shards
    def absorb(self, spans: List[Dict[str, Any]], **attrs: Any) -> None:
        """Fold a worker shard's span records into this tracer.

        A parallel sweep's workers each run their own :class:`Tracer` and
        send back ``tracer.spans`` (plain dicts, picklable); the parent
        absorbs the shards in cell order so one trace file covers the whole
        sweep. ``attrs`` (e.g. ``cell=label``) are merged into every
        absorbed record. Shard timestamps stay relative to the *worker's*
        epoch — wall-clock spans are never deterministic, and per-shard
        durations are what matters for finding slow cells.
        """
        for span in spans:
            record = dict(span)
            if attrs:
                record["attrs"] = {**record.get("attrs", {}), **attrs}
            self.spans.append(record)

    # ---------------------------------------------------------------- summary
    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count, total and max duration."""
        summary: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span["type"] != "span" or span["dur"] is None:
                continue
            entry = summary.setdefault(
                span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span["dur"]
            entry["max_s"] = max(entry["max_s"], span["dur"])
        return summary

    # ----------------------------------------------------------------- export
    def lines(self) -> Iterator[Dict[str, Any]]:
        """The records that :meth:`write_jsonl` would write, in order."""
        yield {"type": "meta", "schema": TRACE_SCHEMA, **self.meta}
        for span in sorted(self.spans, key=lambda s: s["t0"]):
            yield span

    def write_jsonl(self, path) -> None:
        from repro.obs.artifacts import open_artifact

        with open_artifact(path, "trace") as handle:
            for record in self.lines():
                handle.write(json.dumps(record) + "\n")


@contextmanager
def trace_span(tracer: Optional[Tracer], name: str, **attrs: Any):
    """Span context manager; a ``None`` tracer makes it a free no-op."""
    if tracer is None:
        yield None
        return
    span = tracer.start(name, attrs)
    try:
        yield span
    finally:
        tracer.finish(span)
