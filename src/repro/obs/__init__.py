"""repro.obs — zero-dependency observability for the measurement pipeline.

Four pieces, usable separately or together:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms plus bounded time-series samplers. On by
  default throughout the substrate; pass :class:`NullRegistry` to run at
  pre-instrumentation speed. Snapshots are deterministic for a fixed seed.
* :mod:`repro.obs.tracing` — wall-clock :func:`trace_span` spans around
  the expensive phases of a run, exported as JSONL.
* :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  (seed, config digest, version, timings, headline metrics) attached to
  runner results.
* :mod:`repro.obs.schema` — structural validators for the exported
  artifacts (used by CI and ``badabing-sim obs validate``).

See DESIGN.md §8 for the span taxonomy and document schemas.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs.alerts import (
    ALERT_RULES_SCHEMA,
    AlertEvent,
    AlertRule,
    AlertRules,
    controller_alert_rules,
    default_fleet_rules,
    load_alert_rules,
    write_alert_rules,
)
from repro.obs.artifacts import ensure_parent_dir, open_artifact
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchRecorder,
    compare_bench_documents,
    environment_fingerprint,
    load_bench_document,
    make_bench_document,
    peak_rss_bytes,
    render_bench_document,
    render_call_tree,
    render_profile_document,
    render_stage_table,
    validate_bench_document,
    write_bench_document,
)
from repro.obs.audit import (
    AUDIT_SCHEMA,
    AccuracyScorecard,
    EpisodeAudit,
    RunAudit,
    ScorecardRow,
    audit_document,
    audit_episodes,
    audit_run,
    publish_audit,
    row_from_audit,
    scorecard_digest,
    scorecard_from_runs,
    write_audit_document,
)
from repro.obs.dash import (
    dashboard_lines,
    document_from_export_record,
    fetch_sessions,
    render_frame,
    replay_documents,
)
from repro.obs.export import (
    EXPORT_SCHEMA,
    SESSIONS_SCHEMA,
    SnapshotWriter,
    TelemetryExporter,
    parse_key,
    read_export_records,
    render_exposition,
    rollup_sessions,
    sessions_document,
    validate_export_file,
    validate_export_record,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    config_digest,
    summarize_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RUN_LENGTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
    merge_snapshots,
    snapshot_digest,
)
from repro.obs.profile import (
    PIPELINE_STAGES,
    PROFILE_SCHEMA,
    STAGE_BUCKETS,
    NullProfiler,
    StackSampler,
    StageProfiler,
    active_profiler,
    merge_stage_maps,
    profile_stage,
    profiling,
    set_active_profiler,
    stages_from_registry,
)
from repro.obs.schema import (
    METRICS_SCHEMA,
    load_audit_document,
    load_metrics_document,
    validate_audit_document,
    validate_metrics_document,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.summary import (
    group_label_path,
    render_audit,
    render_grouped_summary,
    render_scorecard,
    render_slowest_spans,
    render_summary,
    slowest_spans,
    split_snapshot_by_label,
    split_snapshot_by_path,
    summary_document,
)
from repro.obs.tracing import TRACE_SCHEMA, Tracer, trace_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "trace_span",
    "RunManifest",
    "config_digest",
    "summarize_snapshot",
    "merge_snapshots",
    "snapshot_digest",
    "scorecard_digest",
    "render_summary",
    "summary_document",
    "validate_metrics_document",
    "validate_trace_file",
    "validate_trace_lines",
    "load_metrics_document",
    "write_metrics_document",
    "metrics_document",
    "EpisodeAudit",
    "RunAudit",
    "ScorecardRow",
    "AccuracyScorecard",
    "audit_episodes",
    "audit_run",
    "publish_audit",
    "row_from_audit",
    "scorecard_from_runs",
    "audit_document",
    "write_audit_document",
    "load_audit_document",
    "validate_audit_document",
    "render_audit",
    "render_scorecard",
    "DEFAULT_BUCKETS",
    "RUN_LENGTH_BUCKETS",
    "METRICS_SCHEMA",
    "MANIFEST_SCHEMA",
    "TRACE_SCHEMA",
    "AUDIT_SCHEMA",
    "EXPORT_SCHEMA",
    "SESSIONS_SCHEMA",
    "ALERT_RULES_SCHEMA",
    "TelemetryExporter",
    "SnapshotWriter",
    "AlertRule",
    "AlertRules",
    "AlertEvent",
    "controller_alert_rules",
    "default_fleet_rules",
    "group_label_path",
    "load_alert_rules",
    "write_alert_rules",
    "render_exposition",
    "parse_key",
    "rollup_sessions",
    "sessions_document",
    "read_export_records",
    "validate_export_record",
    "validate_export_file",
    "dashboard_lines",
    "render_frame",
    "replay_documents",
    "fetch_sessions",
    "document_from_export_record",
    "render_grouped_summary",
    "split_snapshot_by_label",
    "split_snapshot_by_path",
    "ensure_parent_dir",
    "open_artifact",
    # profiling + perf trajectory (DESIGN.md §14)
    "PROFILE_SCHEMA",
    "BENCH_SCHEMA",
    "PIPELINE_STAGES",
    "STAGE_BUCKETS",
    "StageProfiler",
    "NullProfiler",
    "StackSampler",
    "active_profiler",
    "set_active_profiler",
    "profiling",
    "profile_stage",
    "merge_stage_maps",
    "stages_from_registry",
    "BenchRecorder",
    "environment_fingerprint",
    "peak_rss_bytes",
    "make_bench_document",
    "validate_bench_document",
    "load_bench_document",
    "write_bench_document",
    "compare_bench_documents",
    "render_bench_document",
    "render_profile_document",
    "render_stage_table",
    "render_call_tree",
    "slowest_spans",
    "render_slowest_spans",
]


def metrics_document(
    registry: MetricsRegistry, manifest: Optional[RunManifest] = None
) -> Dict[str, Any]:
    """Assemble the exportable ``{"schema", "manifest", "metrics"}`` doc."""
    return {
        "schema": METRICS_SCHEMA,
        "manifest": manifest.to_dict() if manifest is not None else None,
        "metrics": registry.snapshot(),
    }


def write_metrics_document(
    path,
    registry: MetricsRegistry,
    manifest: Optional[RunManifest] = None,
) -> Dict[str, Any]:
    """Write the combined manifest + snapshot JSON document to ``path``,
    creating missing parent directories."""
    document = metrics_document(registry, manifest)
    with open_artifact(path, "metrics document") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document
