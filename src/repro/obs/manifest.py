"""Run manifests: what ran, with which inputs, how fast, and what it saw.

A :class:`RunManifest` travels with every runner result and is what the
CLI writes next to the metric snapshot. It answers the questions a sweep
post-mortem starts with — which seed, which exact configuration (content
digest, not object identity), which package version, how long the run
took in simulated vs wall time — plus a compact summary of the headline
metrics so a failed cell can be triaged without loading the full
snapshot.

Wall-clock fields (``wall_seconds``, ``events_per_second``, ``sim_rate``)
are intentionally *not* part of the deterministic surface; equality
checks and regression tests should use :meth:`RunManifest.deterministic_dict`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Schema identifier stamped into exported manifests.
MANIFEST_SCHEMA = "repro.obs.manifest/1"


def config_digest(*configs: Any) -> str:
    """Content hash of one or more configuration objects.

    Dataclasses are canonicalized via ``asdict``; anything else must
    already be JSON-serializable. The digest is stable across processes
    and platforms (sorted keys, no whitespace).
    """
    canonical = []
    for config in configs:
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            canonical.append(
                {"__type__": type(config).__name__, **dataclasses.asdict(config)}
            )
        else:
            canonical.append(config)
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Provenance + timing + headline-metric record for one run."""

    tool: str
    seed: int
    config_digest: str
    package_version: str
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    events_processed: int = 0
    #: Headline metric summary (deterministic; drawn from the registry).
    metrics: Dict[str, float] = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    @property
    def sim_rate(self) -> float:
        """Simulated seconds per wall second (bigger is faster)."""
        return self.sim_seconds / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def events_per_second(self) -> float:
        return self.events_processed / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "tool": self.tool,
            "seed": self.seed,
            "config_digest": self.config_digest,
            "package_version": self.package_version,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "sim_rate": self.sim_rate,
            "events_processed": self.events_processed,
            "events_per_second": self.events_per_second,
            "metrics": dict(self.metrics),
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """The manifest minus wall-clock fields (safe to compare across runs)."""
        out = self.to_dict()
        for key in ("wall_seconds", "sim_rate", "events_per_second"):
            out.pop(key, None)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        return cls(
            tool=data["tool"],
            seed=data["seed"],
            config_digest=data["config_digest"],
            package_version=data["package_version"],
            sim_seconds=data.get("sim_seconds", 0.0),
            wall_seconds=data.get("wall_seconds", 0.0),
            events_processed=data.get("events_processed", 0),
            metrics=dict(data.get("metrics", {})),
            schema=data.get("schema", MANIFEST_SCHEMA),
        )


def summarize_snapshot(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Headline totals pulled out of a metric snapshot for the manifest.

    Sums labeled counters into per-family totals so the manifest stays a
    flat, small dict: e.g. every ``queue.drops{...}`` lands in
    ``queue.drops`` while per-cause detail remains in the snapshot.
    """
    totals: Dict[str, float] = {}
    for key, value in snapshot.get("counters", {}).items():
        name = key.split("{", 1)[0]
        totals[name] = totals.get(name, 0) + value
    for key, hist in snapshot.get("histograms", {}).items():
        name = key.split("{", 1)[0]
        totals[f"{name}.count"] = totals.get(f"{name}.count", 0) + hist["count"]
    return totals


def attach_manifest(result: Any, manifest: Optional[RunManifest]) -> Any:
    """Best-effort attachment of a manifest onto a result object."""
    if manifest is not None and hasattr(result, "manifest"):
        result.manifest = manifest
    return result
