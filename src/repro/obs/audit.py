"""Accuracy audit: join simulator ground truth to probe observations.

The paper's contribution is *accuracy* — how close BADABING's F̂/D̂ land
to the true loss-episode process and when the §5.4 validation says the
estimates are trustworthy. This module observes exactly that quantity:

* **Episode audit** — for every true
  :class:`~repro.analysis.episodes.LossEpisode` at the bottleneck, which
  scheduled probe slots landed inside it and whether the §6.1 marking
  flagged any of them. Each episode is classified ``detected`` (a probed
  slot inside it was marked congested), ``partially_sampled`` (probes
  landed inside it but none was marked — the probes passed through without
  witnessing the congestion), or ``missed`` (no probe landed inside it at
  all), with per-episode sampling coverage and a duration-attribution
  breakdown.
* **Convergence telemetry** — the cumulative F̂(t)/D̂(t) trajectory (via
  :func:`~repro.core.streaming.convergence_points`), its relative error
  against ground truth, and the live
  :class:`~repro.core.validation.SequentialValidator` signals, exported as
  deterministic registry series by :func:`publish_audit`.
* **Scorecard** — :class:`AccuracyScorecard` rows aggregating per-run (and
  per-sweep-cell) audits into the |F̂−F|/F, |D̂−D|/D, recall, and
  validation-verdict table an evaluation reads first.

Everything recorded here is simulation-domain, so two runs with the same
seed export byte-identical audit documents (this is tested). The audit is
built only when the run's registry is enabled; under
:class:`~repro.obs.metrics.NullRegistry` no audit work happens at all.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.episodes import LossEpisode, episode_slot_range
from repro.core.streaming import ConvergencePoint, convergence_points
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

#: Schema identifier of exported audit documents.
AUDIT_SCHEMA = "repro.obs.audit/1"

EPISODE_DETECTED = "detected"
EPISODE_PARTIAL = "partially_sampled"
EPISODE_MISSED = "missed"
EPISODE_STATUSES = (EPISODE_DETECTED, EPISODE_PARTIAL, EPISODE_MISSED)

#: Buckets (seconds) for the missed-episode-duration histogram: episodes
#: shorter than a slot up to multi-second outages.
MISSED_DURATION_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0)

#: Buckets for per-episode sampling coverage (a fraction in [0, 1]).
COVERAGE_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0)

#: Exported convergence trajectories are decimated to at most this many
#: points (deterministically: a fixed stride over the outcome sequence).
MAX_CONVERGENCE_POINTS = 512


def _clean(value: Optional[float]) -> Optional[float]:
    """nan/inf → None so audit documents stay strict JSON."""
    if value is None or not math.isfinite(value):
        return None
    return value


def relative_error(estimated: float, true: float) -> Optional[float]:
    """|est − true| / true, or None when undefined (true == 0 or est nan)."""
    if true == 0 or not math.isfinite(estimated) or not math.isfinite(true):
        return None
    return abs(estimated - true) / abs(true)


# ---------------------------------------------------------------------------
# Episode audit
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EpisodeAudit:
    """One true loss episode joined against the probe process.

    Slot indices are relative to the measurement start (clamped to the
    measurement window), matching the probe schedule's slot grid.
    """

    start: float
    end: float
    drops: int
    first_slot: int
    last_slot: int
    #: Slots of this episode the schedule actually probed.
    probed_slots: int
    #: Probed slots the §6.1 marking flagged as congested.
    congested_slots: int
    status: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def n_slots(self) -> int:
        return self.last_slot - self.first_slot + 1

    @property
    def sampling_coverage(self) -> float:
        """Fraction of the episode's slots a probe landed in."""
        return self.probed_slots / self.n_slots

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "drops": self.drops,
            "first_slot": self.first_slot,
            "last_slot": self.last_slot,
            "probed_slots": self.probed_slots,
            "congested_slots": self.congested_slots,
            "sampling_coverage": self.sampling_coverage,
            "status": self.status,
        }


def audit_episodes(
    episodes: Sequence[LossEpisode],
    probe_slots: Sequence[int],
    slot_states: Dict[int, bool],
    origin: float,
    slot_width: float,
    n_slots: int,
) -> List[EpisodeAudit]:
    """Classify every true episode by how the probe process saw it.

    Parameters
    ----------
    episodes:
        Ground-truth episodes in absolute simulation time (as found in
        :class:`~repro.experiments.runner.GroundTruth`).
    probe_slots:
        Sorted slot indices the schedule covered with a probe.
    slot_states:
        Marking output: probed slot -> congestion indication.
    origin:
        Absolute time of slot 0 (the measurement start).
    slot_width / n_slots:
        The slot grid (episode slots are clamped to ``[0, n_slots - 1]``).
    """
    ordered = sorted(probe_slots)
    audits: List[EpisodeAudit] = []
    for episode in episodes:
        first, last = episode_slot_range(episode, origin, slot_width)
        first = max(first, 0)
        last = min(last, n_slots - 1)
        if last < first:
            # The episode grazes the window edge without overlapping any
            # in-window slot; nothing could have sampled it.
            first = last = max(0, min(first, n_slots - 1))
        lo = bisect_left(ordered, first)
        hi = bisect_right(ordered, last)
        inside = ordered[lo:hi]
        congested = sum(1 for slot in inside if slot_states.get(slot))
        if not inside:
            status = EPISODE_MISSED
        elif congested:
            status = EPISODE_DETECTED
        else:
            status = EPISODE_PARTIAL
        audits.append(
            EpisodeAudit(
                start=episode.start,
                end=episode.end,
                drops=episode.drops,
                first_slot=first,
                last_slot=last,
                probed_slots=len(inside),
                congested_slots=congested,
                status=status,
            )
        )
    return audits


# ---------------------------------------------------------------------------
# Per-run audit
# ---------------------------------------------------------------------------

@dataclass
class RunAudit:
    """Estimate-vs-truth accounting for one finished measurement."""

    tool: str
    slot_width: float
    window: Tuple[float, float]
    true_frequency: float
    est_frequency: float
    true_duration_seconds: float
    #: nan when the estimator saw no transitions.
    est_duration_seconds: float
    episodes: List[EpisodeAudit] = field(default_factory=list)
    convergence: List[ConvergencePoint] = field(default_factory=list)
    #: §5.4 verdicts (acceptable, violation rate, asymmetries, stop/abort).
    validation: Dict[str, Any] = field(default_factory=dict)
    #: Plan-vs-observed slot accounting of a degraded run (None = complete).
    coverage: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------- derived
    @property
    def frequency_rel_error(self) -> Optional[float]:
        return relative_error(self.est_frequency, self.true_frequency)

    @property
    def duration_rel_error(self) -> Optional[float]:
        return relative_error(self.est_duration_seconds, self.true_duration_seconds)

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def episode_counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in EPISODE_STATUSES}
        for episode in self.episodes:
            counts[episode.status] += 1
        return counts

    @property
    def episode_recall(self) -> Optional[float]:
        """Detected episodes / true episodes (None when truth had none)."""
        if not self.episodes:
            return None
        return self.episode_counts[EPISODE_DETECTED] / len(self.episodes)

    @property
    def duration_by_status(self) -> Dict[str, float]:
        """True episode seconds attributed to each detection status."""
        totals = {status: 0.0 for status in EPISODE_STATUSES}
        for episode in self.episodes:
            totals[episode.status] += episode.duration
        return totals

    @property
    def mean_sampling_coverage(self) -> Optional[float]:
        if not self.episodes:
            return None
        return sum(e.sampling_coverage for e in self.episodes) / len(self.episodes)

    # -------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, Any]:
        convergence: Dict[str, List[Any]] = {
            "t": [],
            "n_experiments": [],
            "f_hat": [],
            "f_rel_error": [],
            "d_hat_seconds": [],
            "d_rel_error": [],
            "violation_rate": [],
            "transition_asymmetry": [],
            "estimated_relative_error": [],
            "should_stop": [],
            "should_abort": [],
        }
        for point in self.convergence:
            d_hat = (
                None
                if point.duration_slots is None
                else point.duration_slots * self.slot_width
            )
            convergence["t"].append((point.end_slot + 1) * self.slot_width)
            convergence["n_experiments"].append(point.n_experiments)
            convergence["f_hat"].append(_clean(point.frequency))
            convergence["f_rel_error"].append(
                relative_error(point.frequency, self.true_frequency)
            )
            convergence["d_hat_seconds"].append(_clean(d_hat))
            convergence["d_rel_error"].append(
                None
                if d_hat is None
                else relative_error(d_hat, self.true_duration_seconds)
            )
            convergence["violation_rate"].append(point.violation_rate)
            convergence["transition_asymmetry"].append(point.transition_asymmetry)
            convergence["estimated_relative_error"].append(
                _clean(point.estimated_relative_error)
            )
            convergence["should_stop"].append(point.should_stop)
            convergence["should_abort"].append(point.should_abort)
        return {
            "tool": self.tool,
            "slot_width": self.slot_width,
            "window": list(self.window),
            "frequency": {
                "true": self.true_frequency,
                "estimated": self.est_frequency,
                "rel_error": self.frequency_rel_error,
            },
            "duration_seconds": {
                "true": self.true_duration_seconds,
                "estimated": _clean(self.est_duration_seconds),
                "rel_error": self.duration_rel_error,
            },
            "episode_audit": {
                "n_episodes": self.n_episodes,
                "counts": self.episode_counts,
                "recall": self.episode_recall,
                "duration_by_status": self.duration_by_status,
                "mean_sampling_coverage": self.mean_sampling_coverage,
                "episodes": [episode.to_dict() for episode in self.episodes],
            },
            "validation": dict(self.validation),
            "coverage": self.coverage,
            "convergence": convergence,
        }


def audit_run(
    result: Any,
    truth: Any,
    schedule: Any,
    start: float,
    tool: str = "badabing",
) -> RunAudit:
    """Build the full accuracy audit for one finished BADABING run.

    ``result`` is a :class:`~repro.core.badabing.BadabingResult` (anything
    with the same attributes works), ``truth`` a
    :class:`~repro.experiments.runner.GroundTruth`, and ``schedule`` the
    :class:`~repro.core.schedule.GeometricSchedule` the tool ran.
    """
    slot_width = result.slot_width
    outcomes = result.outcomes
    every = max(1, -(-len(outcomes) // MAX_CONVERGENCE_POINTS))
    convergence = convergence_points(
        outcomes, improved=result.estimate.improved, every=every
    )
    episodes = audit_episodes(
        truth.episodes,
        schedule.probe_slots,
        result.marking.slot_states,
        origin=start,
        slot_width=slot_width,
        n_slots=truth.n_slots,
    )
    report = result.validation
    last = convergence[-1] if convergence else None
    validation = {
        "n_experiments": report.n_experiments,
        "transitions": report.transition_count,
        "violations": report.violations,
        "violation_rate": report.violation_rate,
        "transition_asymmetry": report.transition_asymmetry,
        "extended_pair_asymmetry": report.extended_pair_asymmetry,
        "extended_gap_asymmetry": report.extended_gap_asymmetry,
        "acceptable": report.is_acceptable(),
        "should_stop": bool(last.should_stop) if last else False,
        "should_abort": bool(last.should_abort) if last else False,
    }
    coverage = result.coverage
    coverage_dict = (
        None
        if coverage is None
        else {
            "scheduled_slots": coverage.scheduled_slots,
            "usable_slots": coverage.usable_slots,
            "scheduled_experiments": coverage.scheduled_experiments,
            "usable_experiments": coverage.usable_experiments,
            "slot_fraction": coverage.slot_fraction,
            "complete": coverage.complete,
        }
    )
    return RunAudit(
        tool=tool,
        slot_width=slot_width,
        window=tuple(truth.window),
        true_frequency=truth.frequency,
        est_frequency=result.frequency,
        true_duration_seconds=truth.duration_mean,
        est_duration_seconds=result.duration_seconds,
        episodes=episodes,
        convergence=convergence,
        validation=validation,
        coverage=coverage_dict,
    )


def publish_audit(
    metrics: MetricsRegistry, audit: RunAudit, start: float = 0.0
) -> None:
    """Export an audit's aggregates and convergence series to a registry.

    Series times are absolute simulation seconds (``start`` + the point's
    in-measurement time), so sweep cells sharing one registry stay
    distinguishable by their label. Everything appended here is
    simulation-domain — same-seed runs export identical series.
    """
    if not metrics.enabled:
        return
    tool = audit.tool
    counts = audit.episode_counts
    for status in EPISODE_STATUSES:
        metrics.counter("audit.episodes", tool=tool, status=status).inc(
            counts[status]
        )
    missed_hist = metrics.histogram(
        "audit.missed_episode_duration_seconds",
        buckets=MISSED_DURATION_BUCKETS,
        tool=tool,
    )
    coverage_hist = metrics.histogram(
        "audit.episode_sampling_coverage",
        buckets=COVERAGE_BUCKETS,
        tool=tool,
    )
    for episode in audit.episodes:
        coverage_hist.observe(episode.sampling_coverage)
        if episode.status == EPISODE_MISSED:
            missed_hist.observe(episode.duration)
    recall = audit.episode_recall
    if recall is not None:
        metrics.gauge("audit.episode_recall", tool=tool).set(recall)
    if audit.frequency_rel_error is not None:
        metrics.gauge("audit.frequency_rel_error", tool=tool).set(
            audit.frequency_rel_error
        )
    if audit.duration_rel_error is not None:
        metrics.gauge("audit.duration_rel_error", tool=tool).set(
            audit.duration_rel_error
        )

    f_series = metrics.series("audit.f_hat", tool=tool)
    f_err_series = metrics.series("audit.f_rel_error", tool=tool)
    d_series = metrics.series("audit.d_hat_seconds", tool=tool)
    viol_series = metrics.series("audit.violation_rate", tool=tool)
    asym_series = metrics.series("audit.transition_asymmetry", tool=tool)
    err_series = metrics.series("audit.estimated_relative_error", tool=tool)
    stop_counter = metrics.counter("audit.validator_stop_transitions", tool=tool)
    abort_counter = metrics.counter("audit.validator_abort_transitions", tool=tool)
    was_stop = was_abort = False
    for point in audit.convergence:
        t = start + (point.end_slot + 1) * audit.slot_width
        f_series.append(t, point.frequency)
        f_err = relative_error(point.frequency, audit.true_frequency)
        if f_err is not None:
            f_err_series.append(t, f_err)
        if point.duration_slots is not None:
            d_series.append(t, point.duration_slots * audit.slot_width)
        viol_series.append(t, point.violation_rate)
        asym_series.append(t, point.transition_asymmetry)
        if point.estimated_relative_error is not None:
            err_series.append(t, point.estimated_relative_error)
        if point.should_stop and not was_stop:
            stop_counter.inc()
        if point.should_abort and not was_abort:
            abort_counter.inc()
        was_stop, was_abort = point.should_stop, point.should_abort


# ---------------------------------------------------------------------------
# Scorecard
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScorecardRow:
    """One run (or sweep cell) in the estimator scorecard."""

    label: str
    ok: bool
    seed: Optional[int] = None
    true_frequency: Optional[float] = None
    est_frequency: Optional[float] = None
    frequency_rel_error: Optional[float] = None
    true_duration_seconds: Optional[float] = None
    est_duration_seconds: Optional[float] = None
    duration_rel_error: Optional[float] = None
    n_episodes: int = 0
    detected: int = 0
    partially_sampled: int = 0
    missed: int = 0
    episode_recall: Optional[float] = None
    acceptable: Optional[bool] = None
    should_stop: Optional[bool] = None
    should_abort: Optional[bool] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "ok": self.ok,
            "seed": self.seed,
            "true_frequency": _clean(self.true_frequency),
            "est_frequency": _clean(self.est_frequency),
            "frequency_rel_error": _clean(self.frequency_rel_error),
            "true_duration_seconds": _clean(self.true_duration_seconds),
            "est_duration_seconds": _clean(self.est_duration_seconds),
            "duration_rel_error": _clean(self.duration_rel_error),
            "n_episodes": self.n_episodes,
            "detected": self.detected,
            "partially_sampled": self.partially_sampled,
            "missed": self.missed,
            "episode_recall": _clean(self.episode_recall),
            "acceptable": self.acceptable,
            "should_stop": self.should_stop,
            "should_abort": self.should_abort,
            "error": self.error,
        }


def row_from_audit(
    label: str, audit: RunAudit, seed: Optional[int] = None
) -> ScorecardRow:
    counts = audit.episode_counts
    return ScorecardRow(
        label=label,
        ok=True,
        seed=seed,
        true_frequency=audit.true_frequency,
        est_frequency=audit.est_frequency,
        frequency_rel_error=audit.frequency_rel_error,
        true_duration_seconds=audit.true_duration_seconds,
        est_duration_seconds=_clean(audit.est_duration_seconds),
        duration_rel_error=audit.duration_rel_error,
        n_episodes=audit.n_episodes,
        detected=counts[EPISODE_DETECTED],
        partially_sampled=counts[EPISODE_PARTIAL],
        missed=counts[EPISODE_MISSED],
        episode_recall=audit.episode_recall,
        acceptable=audit.validation.get("acceptable"),
        should_stop=audit.validation.get("should_stop"),
        should_abort=audit.validation.get("should_abort"),
    )


@dataclass
class AccuracyScorecard:
    """Aggregate view over one or many audited runs."""

    rows: List[ScorecardRow] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.rows)

    @property
    def n_ok(self) -> int:
        return sum(1 for row in self.rows if row.ok)

    @property
    def n_acceptable(self) -> int:
        return sum(1 for row in self.rows if row.acceptable)

    def _mean(self, values: Iterable[Optional[float]]) -> Optional[float]:
        present = [value for value in values if value is not None]
        if not present:
            return None
        return sum(present) / len(present)

    @property
    def mean_frequency_rel_error(self) -> Optional[float]:
        return self._mean(row.frequency_rel_error for row in self.rows)

    @property
    def worst_frequency_rel_error(self) -> Optional[float]:
        present = [
            row.frequency_rel_error
            for row in self.rows
            if row.frequency_rel_error is not None
        ]
        return max(present) if present else None

    @property
    def mean_duration_rel_error(self) -> Optional[float]:
        return self._mean(row.duration_rel_error for row in self.rows)

    @property
    def mean_episode_recall(self) -> Optional[float]:
        return self._mean(row.episode_recall for row in self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_runs": self.n_runs,
            "n_ok": self.n_ok,
            "n_acceptable": self.n_acceptable,
            "mean_frequency_rel_error": _clean(self.mean_frequency_rel_error),
            "worst_frequency_rel_error": _clean(self.worst_frequency_rel_error),
            "mean_duration_rel_error": _clean(self.mean_duration_rel_error),
            "mean_episode_recall": _clean(self.mean_episode_recall),
            "rows": [row.to_dict() for row in self.rows],
        }


def scorecard_from_runs(
    entries: Iterable[Tuple[str, Optional[RunAudit], Optional[str], Optional[int]]],
) -> AccuracyScorecard:
    """Assemble a scorecard from ``(label, audit, error, seed)`` entries.

    ``audit`` is None for failed (or unaudited) runs; ``error`` carries the
    failure text so crashed sweep cells stay visible in the scorecard
    instead of silently shrinking the denominator.
    """
    rows: List[ScorecardRow] = []
    for label, audit, error, seed in entries:
        if audit is not None:
            rows.append(row_from_audit(label, audit, seed=seed))
        else:
            rows.append(ScorecardRow(label=label, ok=False, seed=seed, error=error))
    return AccuracyScorecard(rows=rows)


def scorecard_digest(scorecard: AccuracyScorecard) -> str:
    """Canonical sha256 hex digest of a scorecard's exported dict.

    The sweep engine's determinism contract is stated in terms of this
    digest: a parallel sweep over the same cells and seeds must produce a
    scorecard that digests identically to the serial run. Everything in a
    scorecard row is simulation-domain, so the digest is reproducible
    across processes and hosts.
    """
    import hashlib

    payload = json.dumps(
        scorecard.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------

def audit_document(
    scorecard: AccuracyScorecard, runs: Sequence[RunAudit] = ()
) -> Dict[str, Any]:
    """Assemble the exportable audit document (scorecard + per-run detail)."""
    return {
        "schema": AUDIT_SCHEMA,
        "scorecard": scorecard.to_dict(),
        "runs": [run.to_dict() for run in runs],
    }


def write_audit_document(path, document: Dict[str, Any]) -> Dict[str, Any]:
    """Write an audit document as JSON (strict: no NaN/Infinity)."""
    from repro.obs.artifacts import open_artifact

    try:
        payload = json.dumps(document, indent=2, allow_nan=False)
    except ValueError as exc:
        raise ObservabilityError(f"audit document is not strict JSON: {exc}")
    with open_artifact(path, "audit document") as handle:
        handle.write(payload + "\n")
    return document
