"""Process-global active-profiler state (hot-path shim).

This lives at the package root rather than inside :mod:`repro.obs`
because the instrumented hot modules — the simulator event loop, link
service, §6.1 marking, the §5 estimator fold, wire codecs — must be able
to read the active profiler without importing ``repro.obs.__init__``,
whose audit layer imports back into ``repro.core`` (an import cycle).
The real profiler implementation, documents, and CLI plumbing live in
:mod:`repro.obs.profile`, which re-exports everything here; user code
should import from there.

The contract for instrumentation sites is a single module-attribute read
plus a ``None`` check per potential stage::

    from repro import profiling as _profiling

    prof = _profiling.ACTIVE
    frame = prof.start("sim.run") if prof is not None else None
    try:
        ...
    finally:
        if prof is not None:
            prof.stop(frame)

With no profiler active (the default everywhere outside ``repro bench``)
that is the entire cost, so profiling support adds nothing measurable to
un-profiled runs and *never* touches a metrics registry — snapshot
digests are byte-identical whether a profiler is active or not.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

#: Per-call duration buckets (seconds): sub-microsecond wire codecs up
#: to multi-second sweep merges. Canonical here (instead of
#: :mod:`repro.obs.profile`, which re-exports it) so per-packet hot sites
#: can bucket inline into leaf accumulators without the obs import.
STAGE_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

#: The process-global active profiler, or None. Read directly by hot
#: paths (``_profiling.ACTIVE``); set via :func:`set_active_profiler` /
#: :func:`profiling` so disabled profilers normalize to None.
ACTIVE: Optional[Any] = None


def active_profiler() -> Optional[Any]:
    """Return the active :class:`~repro.obs.profile.StageProfiler`, if any."""
    return ACTIVE


def set_active_profiler(profiler: Optional[Any]) -> Optional[Any]:
    """Install ``profiler`` as the process-global profiler.

    Disabled profilers (``enabled`` false, e.g.
    :class:`~repro.obs.profile.NullProfiler`) normalize to ``None`` so
    instrumentation sites stay a single ``None`` check. Returns the
    previously active profiler (which may be ``None``).
    """
    global ACTIVE
    previous = ACTIVE
    if profiler is not None and not getattr(profiler, "enabled", True):
        profiler = None
    ACTIVE = profiler
    return previous


@contextmanager
def profiling(profiler: Optional[Any]) -> Iterator[Optional[Any]]:
    """Scope ``profiler`` as the active profiler; restores the previous one.

    Nesting is safe: a sweep cell activating its own profiler inside a
    bench run shadows the bench profiler for the cell's duration and the
    bench profiler resumes afterwards.
    """
    global ACTIVE
    previous = set_active_profiler(profiler)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


@contextmanager
def profile_stage(name: str) -> Iterator[Optional[Any]]:
    """Scoped timer against the active profiler; free no-op when none.

    Convenience for warm (per-run, per-phase) sites; per-packet hot paths
    should use the manual ``start``/``stop`` pattern from the module
    docstring instead to skip generator overhead.
    """
    prof = ACTIVE
    if prof is None:
        yield None
        return
    frame = prof.start(name)
    try:
        yield frame
    finally:
        prof.stop(frame)
