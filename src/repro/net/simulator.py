"""Discrete-event simulation engine.

A deliberately small, fast event loop built on :mod:`heapq`. Everything in
the network substrate (links, queues, traffic sources, probe tools) schedules
callbacks on a shared :class:`Simulator`.

Determinism
-----------
Events scheduled for the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), and all randomness is
drawn from :class:`random.Random` instances handed out by
:meth:`Simulator.rng`, each seeded from the simulator's master seed and a
caller-supplied label. Two runs with the same seed and the same scenario are
therefore bit-identical, which is what makes the paper's "repeatable lab
tests" property hold in this reproduction.
"""

from __future__ import annotations

import heapq
import random
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import profiling as _profiling
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry

Callback = Callable[..., None]


class _Event:
    """A scheduled callback. Cancellation just flips a flag (lazy deletion)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callback, args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True


class Simulator:
    """Event-driven simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Master seed for all randomness in the simulation. Component RNGs are
        derived from it via :meth:`rng` so that adding a new random component
        does not perturb the streams of existing ones.
    """

    def __init__(
        self,
        seed: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        vectorized: bool = False,
    ):
        self._queue: List[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self.seed = seed
        #: Simulator-wide default for the array-batched measurement pipeline
        #: (:mod:`repro.core.batch`). Tools built on this simulator consult
        #: it when not explicitly overridden; results are bit-identical
        #: either way, so this only chooses the faster implementation.
        self.vectorized = vectorized
        self._rngs: Dict[str, random.Random] = {}
        #: Metrics registry shared by every component built on this
        #: simulator. On by default (cheap); pass a
        #: :class:`~repro.obs.metrics.NullRegistry` to disable.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # A sweep may share one registry across several simulators, so the
        # per-sim view subtracts the counter value seen at construction.
        self._events_counter = self.metrics.counter("sim.events_processed")
        self._events_base = self._events_counter.value
        self._cancelled_counter = self.metrics.counter("sim.events_cancelled")
        #: Deepest the event heap has ever been (plain int: hot path).
        self.heap_peak = 0
        #: Cumulative wall-clock seconds spent inside :meth:`run`.
        self.wall_seconds = 0.0
        #: True when the most recent :meth:`run` stopped because it hit its
        #: ``max_events`` budget (rather than draining or reaching ``until``).
        #: Runaway simulations are detectable by checking this after run().
        self.budget_exhausted = False
        if self.metrics.enabled:
            self.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        # Point-in-time reading: ``sample`` pins the peak so a mid-run
        # exporter scrape cannot perturb the snapshot digest.
        registry.gauge("sim.pending_events").sample(self.pending())
        registry.gauge("sim.heap_peak").set(self.heap_peak)
        registry.gauge("sim.now_seconds").set(self._now)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events dispatched by this simulator, backed by the metrics
        counter (shared registries subtract the pre-existing total)."""
        return self._events_counter.value - self._events_base

    # ------------------------------------------------------------------- rng
    def rng(self, label: str) -> random.Random:
        """Return a named, deterministically seeded random stream.

        Repeated calls with the same label return the same instance, so
        components can call ``sim.rng("tcp-7")`` freely.
        """
        stream = self._rngs.get(label)
        if stream is None:
            # hash(str) is randomized per-process, so derive the per-label
            # seed with a deterministic digest instead.
            stream = random.Random(_stable_seed(self.seed, label))
            self._rngs[label] = stream
        return stream

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callback, *args: Any) -> _Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> _Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        event = _Event(time, self._seq, callback, args)
        heapq.heappush(self._queue, event)
        if len(self._queue) > self.heap_peak:
            self.heap_peak = len(self._queue)
        return event

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue empties or ``until`` is reached.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        At return, the clock is advanced to ``until`` (if given), even if the
        queue drained earlier, so repeated ``run`` calls compose naturally.

        Returns the number of events dispatched by this call. When the call
        stops because ``max_events`` was exhausted (with work still pending),
        :attr:`budget_exhausted` is set so callers can tell a completed run
        from a truncated one.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self.budget_exhausted = False
        queue = self._queue
        dispatched = 0
        cancelled = 0
        prof = _profiling.ACTIVE
        prof_frame = prof.start("sim.run") if prof is not None else None
        wall_start = time.perf_counter()
        try:
            while queue:
                event = queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                if event.cancelled:
                    cancelled += 1
                    continue
                self._now = event.time
                event.callback(*event.args)
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    self.budget_exhausted = self._has_runnable(until)
                    break
        finally:
            self._running = False
            self._events_counter.inc(dispatched)
            self._cancelled_counter.inc(cancelled)
            self.wall_seconds += time.perf_counter() - wall_start
            if prof is not None:
                prof.stop(prof_frame)
        if until is not None and self._now < until and not self.budget_exhausted:
            self._now = until
        return dispatched

    def _has_runnable(self, until: Optional[float]) -> bool:
        """Whether any live event remains that this run() would still fire."""
        return any(
            not event.cancelled and (until is None or event.time <= until)
            for event in self._queue
        )

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)


def _stable_seed(master_seed: int, label: str) -> int:
    """Deterministic seed derivation independent of PYTHONHASHSEED."""
    acc = 0xCBF29CE484222325  # FNV-1a 64-bit offset basis
    for byte in f"{master_seed}:{label}".encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
