"""Deterministic fault injection for the network substrate.

The paper's testbed only misbehaves in one way — the bottleneck queue
drops packets — but real measurement deployments also see path noise that
has nothing to do with congestion: uncorrelated and bursty loss on other
segments, reordering, duplication, links that flap, and collectors that
crash and restart mid-measurement. This module injects exactly those
impairments into the simulator so every estimator and consumer can be
validated against degraded inputs.

Design rules
------------
* **Composable** — one :class:`FaultProfile` switches any subset of the
  impairments on; a :class:`FaultInjector` realizes the profile on a
  specific :class:`~repro.net.link.Link` (drop / reorder / duplicate /
  flap) or :class:`~repro.net.node.Host` (receiver outage windows).
* **Deterministic** — all randomness comes from a named
  :meth:`~repro.net.simulator.Simulator.rng` stream keyed by the
  injector's label, so two runs with the same seed and profile are
  bit-identical, and *adding* an injector never perturbs the random
  streams of existing components.
* **Zero-cost when disabled** — a no-op profile draws no random numbers
  and schedules through the exact same code path as an unfaulted link,
  so the clean-path reproduction stays bit-identical to the seed.

Bursty loss uses the Gilbert two-state Markov chain from
:mod:`repro.synthetic.gilbert`, applied at packet granularity: a packet
finds the chain in the *burst* state with stationary probability
``b/(b+g)`` and is then dropped with ``gilbert_drop``; sojourn lengths
are geometric with means ``1/g`` (burst) and ``1/b`` (clear) packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.net.packet import Packet
from repro.net.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (link imports us)
    from repro.net.link import Link
    from repro.net.node import Host


@dataclass(frozen=True)
class FaultProfile:
    """A declarative bundle of impairments. All default to "off".

    Attributes
    ----------
    drop_probability:
        Per-packet uncorrelated drop probability (Bernoulli loss).
    gilbert_b, gilbert_g:
        Per-packet transition probabilities of the Gilbert chain:
        ``b`` = P(clear -> burst), ``g`` = P(burst -> clear). Both must be
        set (> 0) to enable bursty loss.
    gilbert_drop:
        Drop probability while the chain is in the burst state.
    reorder_probability:
        Probability a packet is held back by an extra delay, letting
        later packets overtake it (classic reordering).
    reorder_delay, reorder_jitter:
        The hold-back is ``reorder_delay`` plus ``U(0, reorder_jitter)``.
    duplicate_probability:
        Probability a delivered packet is delivered a second time.
    duplicate_lag:
        Extra delay of the duplicate copy relative to the original.
    flap_down, flap_up:
        Link flapping: the link cycles down for ``flap_down`` seconds then
        up for ``flap_up`` seconds, starting (down-first) at
        ``flap_start``. Packets finishing transmission while down vanish.
        Both must be > 0 to enable flapping.
    flap_start:
        Absolute simulation time of the first down transition.
    outage_windows:
        Host-side collector outages: ``((start, end), ...)`` absolute-time
        windows during which a faulted Host silently discards local
        deliveries — a crashed-and-restarted receiver process.
    """

    drop_probability: float = 0.0
    gilbert_b: float = 0.0
    gilbert_g: float = 0.0
    gilbert_drop: float = 0.5
    reorder_probability: float = 0.0
    reorder_delay: float = 0.0
    reorder_jitter: float = 0.0
    duplicate_probability: float = 0.0
    duplicate_lag: float = 0.0005
    flap_down: float = 0.0
    flap_up: float = 0.0
    flap_start: float = 0.0
    outage_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "drop_probability",
            "gilbert_b",
            "gilbert_g",
            "gilbert_drop",
            "reorder_probability",
            "duplicate_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {value}")
        for name in (
            "reorder_delay",
            "reorder_jitter",
            "duplicate_lag",
            "flap_down",
            "flap_up",
            "flap_start",
        ):
            value = getattr(self, name)
            if value < 0:
                raise FaultInjectionError(f"{name} must be >= 0, got {value}")
        if (self.gilbert_b > 0) != (self.gilbert_g > 0):
            raise FaultInjectionError(
                "gilbert_b and gilbert_g must be enabled together "
                f"(got b={self.gilbert_b}, g={self.gilbert_g})"
            )
        if (self.flap_down > 0) != (self.flap_up > 0):
            raise FaultInjectionError(
                "flap_down and flap_up must be enabled together "
                f"(got down={self.flap_down}, up={self.flap_up})"
            )
        # normalize so equality / no-op detection is well defined
        windows = tuple(tuple(window) for window in self.outage_windows)
        for window in windows:
            if len(window) != 2 or window[0] > window[1]:
                raise FaultInjectionError(
                    f"outage windows are (start, end) with start <= end: {window}"
                )
        object.__setattr__(self, "outage_windows", windows)

    # ------------------------------------------------------------- predicates
    @property
    def gilbert_enabled(self) -> bool:
        return self.gilbert_b > 0 and self.gilbert_g > 0

    @property
    def flapping_enabled(self) -> bool:
        return self.flap_down > 0 and self.flap_up > 0

    @property
    def is_noop(self) -> bool:
        """True when the profile injects nothing at all."""
        return (
            self.drop_probability == 0
            and not self.gilbert_enabled
            and self.reorder_probability == 0
            and self.duplicate_probability == 0
            and not self.flapping_enabled
            and not self.outage_windows
        )

    @property
    def needs_rng(self) -> bool:
        """True when realizing the profile requires random draws."""
        return (
            self.drop_probability > 0
            or self.gilbert_enabled
            or self.reorder_probability > 0
            or self.duplicate_probability > 0
        )

    def shifted(self, offset: float) -> "FaultProfile":
        """Profile with all absolute times moved ``offset`` seconds later.

        Lets callers author windows relative to the measurement start and
        anchor them once the warmup length is known.
        """
        return replace(
            self,
            flap_start=self.flap_start + offset,
            outage_windows=tuple(
                (start + offset, end + offset) for start, end in self.outage_windows
            ),
        )


#: Named profiles usable from the CLI / runner (``--faults mild`` etc.).
#: Times are relative to the measurement start; the runner anchors them.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "mild": FaultProfile(
        drop_probability=0.001,
        reorder_probability=0.005,
        reorder_delay=0.002,
        reorder_jitter=0.004,
        duplicate_probability=0.002,
    ),
    "reorder": FaultProfile(
        reorder_probability=0.05, reorder_delay=0.004, reorder_jitter=0.006
    ),
    "duplicate": FaultProfile(duplicate_probability=0.05),
    "bursty": FaultProfile(gilbert_b=0.002, gilbert_g=0.05, gilbert_drop=0.5),
    # Aggressive Gilbert chain (~17% of slots bad, 80% drop when bad):
    # guarantees visible loss episodes even in sub-second sessions, so a
    # controller demo's lossy path stays unconverged while clean paths
    # finish — the budget-shift recipe in EXPERIMENTS.md relies on it.
    "heavy-loss": FaultProfile(gilbert_b=0.02, gilbert_g=0.1, gilbert_drop=0.8),
    "flaky-link": FaultProfile(flap_down=0.5, flap_up=15.0, flap_start=5.0),
    "outage": FaultProfile(outage_windows=((20.0, 25.0),)),
    "chaos": FaultProfile(
        drop_probability=0.002,
        gilbert_b=0.001,
        gilbert_g=0.05,
        gilbert_drop=0.5,
        reorder_probability=0.02,
        reorder_delay=0.003,
        reorder_jitter=0.005,
        duplicate_probability=0.01,
        flap_down=0.3,
        flap_up=20.0,
        flap_start=8.0,
        outage_windows=((40.0, 42.0),),
    ),
}


def resolve_fault_profile(
    faults: "Optional[str | FaultProfile]",
) -> Optional[FaultProfile]:
    """Accept a profile name, a profile object, or None; None for no-ops."""
    if faults is None:
        return None
    if isinstance(faults, str):
        profile = FAULT_PROFILES.get(faults)
        if profile is None:
            raise FaultInjectionError(
                f"unknown fault profile {faults!r}; choose from {sorted(FAULT_PROFILES)}"
            )
    elif isinstance(faults, FaultProfile):
        profile = faults
    else:
        raise FaultInjectionError(
            f"faults must be a profile name or FaultProfile, got {type(faults).__name__}"
        )
    return None if profile.is_noop else profile


@dataclass
class FaultStats:
    """Counters of what an injector actually did (for degraded-mode reports)."""

    delivered: int = 0
    dropped_random: int = 0
    dropped_burst: int = 0
    dropped_flap: int = 0
    dropped_outage: int = 0
    duplicated: int = 0
    reordered: int = 0

    @property
    def dropped(self) -> int:
        return (
            self.dropped_random
            + self.dropped_burst
            + self.dropped_flap
            + self.dropped_outage
        )

    @property
    def total_injected(self) -> int:
        return self.dropped + self.duplicated + self.reordered

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Realize a :class:`FaultProfile` on links and hosts.

    One injector may be attached to any number of links and hosts; they
    share the profile, the random stream, and the counters (a "path-level"
    chaos source). Attach a separate injector per link for independent
    per-link noise.
    """

    def __init__(self, sim: Simulator, profile: FaultProfile, label: str = "faults"):
        if not isinstance(profile, FaultProfile):
            raise FaultInjectionError(
                f"profile must be a FaultProfile, got {type(profile).__name__}"
            )
        self.sim = sim
        self.profile = profile
        self.label = label
        self.stats = FaultStats()
        # Only materialize the random stream when the profile needs it, so a
        # windows/flap-only injector stays draw-free and fully arithmetic.
        self._rng = sim.rng(f"faults-{label}") if profile.needs_rng else None
        self._in_burst = False
        # Injected drops are pushed per-(cause, protocol) so receiver-side
        # accounting can separate fault noise from congestion tail-drops;
        # aggregate stats are pulled from FaultStats at snapshot time.
        self._metrics = sim.metrics if sim.metrics.enabled else None
        if self._metrics is not None:
            self._metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        for name, value in self.stats.as_dict().items():
            registry.counter(f"faults.{name}", injector=self.label).value = value

    def _count_drop(self, cause: str, packet: Packet) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "faults.drops",
                injector=self.label,
                cause=cause,
                protocol=packet.protocol,
            ).inc()

    # -------------------------------------------------------------- attaching
    def attach_to_link(self, link: "Link") -> "FaultInjector":
        """Install this injector on a link's delivery path."""
        link.set_fault_injector(self)
        return self

    def attach_to_host(self, host: "Host") -> "FaultInjector":
        """Install this injector as the host's inbound (collector) filter."""
        host.set_inbound_filter(self.admit)
        return self

    # ------------------------------------------------------------- link faults
    def link_down(self, now: float) -> bool:
        """Whether the flap schedule has the link down at ``now``."""
        profile = self.profile
        if not profile.flapping_enabled or now < profile.flap_start:
            return False
        cycle = profile.flap_down + profile.flap_up
        phase = (now - profile.flap_start) % cycle
        return phase < profile.flap_down

    def deliver(self, packet: Packet, receiver, delay: float) -> None:
        """Fault-aware replacement for a link's propagation scheduling.

        Called by :class:`~repro.net.link.Link` at end of serialization;
        decides whether/when/how often ``receiver(packet)`` fires.
        """
        profile = self.profile
        sim = self.sim
        if self.link_down(sim.now):
            self.stats.dropped_flap += 1
            self._count_drop("flap", packet)
            return
        rng = self._rng
        if rng is not None:
            if profile.gilbert_enabled:
                # Advance the two-state chain one step per packet, then
                # sample the state-dependent drop (Gilbert-Elliott).
                if self._in_burst:
                    if rng.random() < profile.gilbert_g:
                        self._in_burst = False
                else:
                    if rng.random() < profile.gilbert_b:
                        self._in_burst = True
                if self._in_burst and rng.random() < profile.gilbert_drop:
                    self.stats.dropped_burst += 1
                    self._count_drop("burst", packet)
                    return
            if profile.drop_probability > 0 and rng.random() < profile.drop_probability:
                self.stats.dropped_random += 1
                self._count_drop("random", packet)
                return
            extra = 0.0
            if (
                profile.reorder_probability > 0
                and rng.random() < profile.reorder_probability
            ):
                extra = profile.reorder_delay
                if profile.reorder_jitter > 0:
                    extra += rng.random() * profile.reorder_jitter
                if extra > 0:
                    self.stats.reordered += 1
            sim.schedule(delay + extra, receiver, packet)
            self.stats.delivered += 1
            if (
                profile.duplicate_probability > 0
                and rng.random() < profile.duplicate_probability
            ):
                self.stats.duplicated += 1
                sim.schedule(delay + extra + profile.duplicate_lag, receiver, packet)
        else:
            sim.schedule(delay, receiver, packet)
            self.stats.delivered += 1

    # ------------------------------------------------------------- host faults
    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside a collector outage window."""
        return any(start <= now < end for start, end in self.profile.outage_windows)

    def admit(self, packet: Packet) -> bool:
        """Inbound filter: False discards the local delivery (collector down)."""
        if self.in_outage(self.sim.now):
            self.stats.dropped_outage += 1
            self._count_drop("outage", packet)
            return False
        return True
