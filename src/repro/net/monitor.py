"""Ground-truth instrumentation (the DAG capture-card equivalent).

The paper established ground truth with optical splitters and Endace DAG
cards on both sides of the bottleneck hop, matching packet headers to
identify exactly which packets were lost and inferring the queue length.
In the simulator we attach a :class:`QueueMonitor` tap directly to the
bottleneck queue: it sees every enqueue, drop, and dequeue with exact
virtual timestamps, which is strictly stronger instrumentation.

To keep memory bounded over multi-hour simulated runs, the monitor does not
store every packet event. It stores:

* every **drop** (time + protocol) — drops are rare by definition,
* every **down-crossing** of a configurable high-water occupancy threshold —
  the information needed to delimit loss episodes the way the paper did for
  Harpoon traffic ("queueing delays of all packets between those losses were
  above 90 milliseconds"),
* aggregate counters (arrivals, drops, departures) for router-centric loss
  rates.

:class:`QueueSampler` separately records a periodic queue-length time series
(for the Figure 4/5/6/8 analogues).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.obs.metrics import RUN_LENGTH_BUCKETS
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator


class QueueMonitor:
    """Lossless tap on a queue, recording drops and high-water crossings.

    Parameters
    ----------
    sim:
        Simulator (for timestamps in manual tests; events carry times).
    name:
        Label for reporting.
    high_water_bytes:
        Occupancy threshold whose *down*-crossings delimit loss episodes.
        If None, episode extraction falls back to gap-based merging only.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "monitor",
        high_water_bytes: Optional[int] = None,
        track_flows: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.high_water_bytes = high_water_bytes
        #: Drop records as (time, protocol) tuples, chronological.
        self.drops: List[Tuple[float, str]] = []
        #: Times at which occupancy fell below the high-water mark.
        self.down_crossings: List[float] = []
        self.arrivals = 0
        self.departures = 0
        self.arrived_bytes = 0
        self._above = False
        #: Per-flow (arrivals, drops) counters — the §3 end-to-end view.
        #: Enabled on demand; costs one dict update per packet.
        self.track_flows = track_flows
        self.flow_arrivals: Dict[str, int] = {}
        self.flow_drops: Dict[str, int] = {}
        # Observability: a decimated queue-depth series and a drop-run
        # histogram (consecutive drops with no intervening dequeue — the
        # burst structure behind loss-episode duration). Disabled wholesale
        # under a NullRegistry, keeping the hot hooks at a None-check.
        self._drop_run = 0
        if sim.metrics.enabled:
            self._depth_series = sim.metrics.series(
                "queue.depth_bytes", max_samples=2048, queue=name
            )
            self._drop_run_hist = sim.metrics.histogram(
                "queue.drop_run_length", buckets=RUN_LENGTH_BUCKETS, queue=name
            )
            sim.metrics.add_collector(self._collect_metrics)
        else:
            self._depth_series = None
            self._drop_run_hist = None

    def _collect_metrics(self, registry) -> None:
        labels = {"monitor": self.name}
        registry.counter("monitor.arrivals", **labels).value = self.arrivals
        registry.counter("monitor.departures", **labels).value = self.departures
        registry.counter("monitor.drops", **labels).value = self.total_drops
        registry.counter("monitor.down_crossings", **labels).value = len(
            self.down_crossings
        )

    # --------------------------------------------------- QueueObserver hooks
    def on_enqueue(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        self.arrivals += 1
        self.arrived_bytes += packet.size
        if self.track_flows:
            flow = packet.flow
            self.flow_arrivals[flow] = self.flow_arrivals.get(flow, 0) + 1
        if self._depth_series is not None:
            self._depth_series.append(time, qlen_bytes)
        self._track(time, qlen_bytes)

    def on_drop(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        self.drops.append((time, packet.protocol))
        self._drop_run += 1
        if self.track_flows:
            flow = packet.flow
            self.flow_drops[flow] = self.flow_drops.get(flow, 0) + 1
        # A drop means the queue is at capacity: certainly above high water.
        if self.high_water_bytes is not None:
            self._above = True

    def on_dequeue(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        self.departures += 1
        if self._drop_run:
            if self._drop_run_hist is not None:
                self._drop_run_hist.observe(self._drop_run)
            self._drop_run = 0
        self._track(time, qlen_bytes)

    def _track(self, time: float, qlen_bytes: int) -> None:
        threshold = self.high_water_bytes
        if threshold is None:
            return
        if self._above and qlen_bytes < threshold:
            self._above = False
            self.down_crossings.append(time)
        elif not self._above and qlen_bytes >= threshold:
            self._above = True

    # ------------------------------------------------------------- summaries
    @property
    def total_drops(self) -> int:
        return len(self.drops)

    @property
    def loss_rate(self) -> float:
        """Router-centric loss rate L/(S+L) (§3)."""
        total = self.arrivals + self.total_drops
        if total == 0:
            return 0.0
        return self.total_drops / total

    def drop_times(self, protocol: Optional[str] = None) -> List[float]:
        """Drop timestamps, optionally filtered by protocol label."""
        if protocol is None:
            return [time for time, _ in self.drops]
        return [time for time, proto in self.drops if proto == protocol]

    def end_to_end_loss_rates(self) -> Dict[str, float]:
        """Per-flow loss rates L_f/(S_f + L_f) — the §3 end-to-end view.

        Requires ``track_flows=True``. §3's central observation is visible
        here: while the router-centric :attr:`loss_rate` is non-zero, many
        individual flows report an end-to-end loss rate of exactly zero,
        which is why self-loss probing underestimates loss frequency.
        """
        if not self.track_flows:
            raise ConfigurationError(
                "per-flow loss rates need QueueMonitor(track_flows=True)"
            )
        rates: Dict[str, float] = {}
        for flow, arrived in self.flow_arrivals.items():
            dropped = self.flow_drops.get(flow, 0)
            rates[flow] = dropped / (arrived + dropped)
        # Flows whose every packet was dropped never show up in arrivals.
        for flow, dropped in self.flow_drops.items():
            if flow not in rates:
                rates[flow] = 1.0
        return rates


class QueueSampler:
    """Periodic queue-length sampler producing a (time, delay) series.

    The queue length is converted to seconds of delay at the configured
    drain rate, matching the y-axis of the paper's Figures 4-6 and 8.
    """

    def __init__(
        self,
        sim: Simulator,
        queue: DropTailQueue,
        drain_rate_bps: float,
        interval: float,
        start: float = 0.0,
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        if drain_rate_bps <= 0:
            raise ConfigurationError("drain_rate_bps must be positive")
        self.sim = sim
        self.queue = queue
        self.drain_rate_bps = drain_rate_bps
        self.interval = interval
        self.times: List[float] = []
        self.delays: List[float] = []
        sim.schedule_at(start, self._sample)

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.delays.append(self.queue.bytes_queued * 8 / self.drain_rate_bps)
        self.sim.schedule(self.interval, self._sample)

    def series(self) -> Tuple[List[float], List[float]]:
        """Return (times, delays-in-seconds) lists of equal length."""
        return self.times, self.delays
