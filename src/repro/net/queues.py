"""Output queues.

The paper's loss process is produced by a single FIFO drop-tail queue on the
bottleneck router's OC3 interface, sized to hold ~100 ms of packets. The
:class:`DropTailQueue` here reproduces exactly that: a byte-limited FIFO that
drops arrivals when full. :class:`REDQueue` is provided for the robustness
ablation (the paper's method should — and does — keep working when the
bottleneck applies random early detection instead of tail drop).

Queues are passive containers; the :class:`repro.net.link.Link` transmitter
pulls packets from them. Observers (see :mod:`repro.net.monitor`) can attach
to see every enqueue, drop and dequeue with exact timestamps — the simulator
equivalent of the paper's DAG capture cards.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Protocol

from repro.errors import ConfigurationError
from repro.net.packet import Packet


class QueueObserver(Protocol):
    """Interface for taps attached to a queue (DAG-card equivalent)."""

    def on_enqueue(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        """Packet accepted into the queue; ``qlen_bytes`` includes it."""

    def on_drop(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        """Packet dropped at arrival; ``qlen_bytes`` is the standing queue."""

    def on_dequeue(self, time: float, packet: Packet, qlen_bytes: int) -> None:
        """Packet handed to the transmitter; ``qlen_bytes`` excludes it."""


class QueueStats:
    """Cheap aggregate counters kept by every queue."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "dequeued_packets",
        "dequeued_bytes",
        "peak_bytes",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.peak_bytes = 0

    @property
    def loss_rate(self) -> float:
        """Router-centric loss rate L/(S+L) from §3 of the paper."""
        total = self.enqueued_packets + self.dropped_packets
        if total == 0:
            return 0.0
        return self.dropped_packets / total


class DropTailQueue:
    """Byte-limited FIFO drop-tail queue.

    Parameters
    ----------
    capacity_bytes:
        Maximum queued bytes. A packet whose admission would exceed the
        capacity is dropped in its entirety (IP, not ATM).
    name:
        Label used in monitor output.
    """

    #: Drop-cause label reported to the metrics registry; RED overrides
    #: per drop to distinguish early (random) drops from forced tail drops.
    drop_cause = "tail"

    def __init__(self, capacity_bytes: int, name: str = "queue"):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"queue capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        self._observers: List[QueueObserver] = []
        self._metrics = None

    # -------------------------------------------------------------- observers
    def attach(self, observer: QueueObserver) -> None:
        """Attach a tap that sees every enqueue/drop/dequeue."""
        self._observers.append(observer)

    def bind_metrics(self, registry) -> None:
        """Publish this queue's counters through a metrics registry.

        Aggregate stats are *pulled* from :class:`QueueStats` at snapshot
        time (zero hot-path cost); only drops — rare by definition — push
        a per-cause/per-protocol counter at drop time. Idempotent per
        registry; a :class:`~repro.obs.metrics.NullRegistry` disables the
        push path entirely.
        """
        if registry is None or not registry.enabled or registry is self._metrics:
            return
        self._metrics = registry
        registry.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        labels = {"queue": self.name}
        registry.counter("queue.enqueued_packets", **labels).value = stats.enqueued_packets
        registry.counter("queue.enqueued_bytes", **labels).value = stats.enqueued_bytes
        registry.counter("queue.dequeued_packets", **labels).value = stats.dequeued_packets
        registry.counter("queue.dropped_packets", **labels).value = stats.dropped_packets
        registry.counter("queue.dropped_bytes", **labels).value = stats.dropped_bytes
        gauge = registry.gauge("queue.bytes", **labels)
        # Always publish floats: an int peak captured by a mid-run scrape
        # JSON-renders as "600" where the end-only path writes "600.0",
        # breaking digest equality even though the values compare equal.
        gauge.set(float(self._bytes))
        gauge.peak = max(gauge.peak, float(stats.peak_bytes))

    # ------------------------------------------------------------------ state
    def __len__(self) -> int:
        return len(self._packets)

    @property
    def bytes_queued(self) -> int:
        """Bytes currently in the queue."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._packets

    # ------------------------------------------------------------- operations
    def offer(self, time: float, packet: Packet) -> bool:
        """Try to admit ``packet`` at ``time``; return True if accepted."""
        if self._admit(time, packet):
            self._accept(time, packet)
            return True
        self._reject(time, packet)
        return False

    def take(self, time: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None if empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size
        for observer in self._observers:
            observer.on_dequeue(time, packet, self._bytes)
        return packet

    # -------------------------------------------------------------- internals
    def _admit(self, time: float, packet: Packet) -> bool:
        """Drop-tail admission: accept iff the packet fits."""
        return self._bytes + packet.size <= self.capacity_bytes

    def _accept(self, time: float, packet: Packet) -> None:
        packet.enqueued_at = time
        self._packets.append(packet)
        self._bytes += packet.size
        stats = self.stats
        stats.enqueued_packets += 1
        stats.enqueued_bytes += packet.size
        if self._bytes > stats.peak_bytes:
            stats.peak_bytes = self._bytes
        for observer in self._observers:
            observer.on_enqueue(time, packet, self._bytes)

    def _reject(self, time: float, packet: Packet) -> None:
        stats = self.stats
        stats.dropped_packets += 1
        stats.dropped_bytes += packet.size
        if self._metrics is not None:
            # Per-cause / per-protocol attribution lets receiver-side
            # accounting separate congestion tail-drops from fault noise.
            self._metrics.counter(
                "queue.drops",
                queue=self.name,
                cause=self.drop_cause,
                protocol=packet.protocol,
            ).inc()
        for observer in self._observers:
            observer.on_drop(time, packet, self._bytes)


class REDQueue(DropTailQueue):
    """Random Early Detection queue (gentle RED, byte mode).

    Used only by the robustness ablation; parameters follow the classic
    Floyd/Jacobson formulation with an exponentially weighted average queue
    and a drop probability ramp between ``min_thresh`` and ``max_thresh``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        name: str = "red-queue",
        min_thresh_frac: float = 0.25,
        max_thresh_frac: float = 0.75,
        max_drop_prob: float = 0.1,
        weight: float = 0.002,
        rng=None,
    ):
        super().__init__(capacity_bytes, name)
        if not 0 < min_thresh_frac < max_thresh_frac <= 1.0:
            raise ConfigurationError(
                "RED thresholds must satisfy 0 < min < max <= 1, got "
                f"{min_thresh_frac}, {max_thresh_frac}"
            )
        if not 0 < max_drop_prob <= 1.0:
            raise ConfigurationError(
                f"max_drop_prob must be in (0, 1], got {max_drop_prob}"
            )
        self.min_thresh = min_thresh_frac * capacity_bytes
        self.max_thresh = max_thresh_frac * capacity_bytes
        self.max_drop_prob = max_drop_prob
        self.weight = weight
        self.avg_bytes = 0.0
        if rng is None:
            import random as _random

            rng = _random.Random(0)
        self._rng = rng

    def _admit(self, time: float, packet: Packet) -> bool:
        # Update the EWMA on every arrival, then apply the RED ramp on top of
        # the hard drop-tail limit.
        self.avg_bytes += self.weight * (self._bytes - self.avg_bytes)
        if self._bytes + packet.size > self.capacity_bytes:
            self.drop_cause = "tail"
            return False
        self.drop_cause = "red-early"
        if self.avg_bytes < self.min_thresh:
            return True
        if self.avg_bytes >= self.max_thresh:
            return False
        ramp = (self.avg_bytes - self.min_thresh) / (self.max_thresh - self.min_thresh)
        return self._rng.random() >= ramp * self.max_drop_prob
