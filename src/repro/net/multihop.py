"""Multi-hop testbed: a chain of independently congestible bottlenecks.

The paper's evaluation is single-bottleneck; §6.2 explicitly defers "more
complex multi-hop scenarios" to future work. This module builds that
scenario: a chain of routers whose every inter-router link is a
(potential) bottleneck with its own byte-limited drop-tail queue, its own
cross-traffic attachment points, and its own ground-truth monitor.

Layout for ``n_hops = 3``::

    probesnd -- r0 ==hop0== r1 ==hop1== r2 ==hop2== r3 -- probercv
                |           |  |        |  |        |
              xsnd0       xrcv0 xsnd1 xrcv1 xsnd2  xrcv2

Cross traffic for hop ``i`` enters at ``r_i`` and leaves at ``r_{i+1}``,
so it shares exactly that hop's queue with the through path. The total
one-way propagation budget is split evenly across the hops, keeping the
end-to-end RTT at the single-hop testbed's value.

End-to-end ("path") congestion episodes are the union over hops of the
per-hop episodes — see
:func:`repro.analysis.episodes.merge_episode_lists`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.episodes import LossEpisode, episodes_from_monitor, merge_episode_lists
from repro.config import TestbedConfig
from repro.errors import ConfigurationError
from repro.net.monitor import QueueMonitor
from repro.net.node import Host
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator
from repro.net.topology import Topology


class MultiHopTestbed:
    """Chain-of-bottlenecks testbed with per-hop instrumentation."""

    PROBE_SENDER = "probesnd"
    PROBE_RECEIVER = "probercv"

    def __init__(
        self,
        sim: Simulator,
        n_hops: int = 3,
        config: Optional[TestbedConfig] = None,
    ):
        if n_hops < 1:
            raise ConfigurationError(f"need at least one hop, got {n_hops}")
        self.sim = sim
        self.n_hops = n_hops
        self.config = config if config is not None else TestbedConfig()
        cfg = self.config
        self.topology = Topology(sim)

        routers = [self.topology.add_router(f"r{i}") for i in range(n_hops + 1)]
        per_hop_delay = cfg.prop_delay / n_hops

        self.hop_queues: List[DropTailQueue] = []
        self.hop_monitors: List[QueueMonitor] = []
        for hop in range(n_hops):
            queue = DropTailQueue(cfg.buffer_bytes, name=f"hop{hop}")
            monitor = QueueMonitor(
                sim,
                name=f"hop{hop}",
                high_water_bytes=int(0.9 * cfg.buffer_bytes),
            )
            queue.attach(monitor)
            self.topology.connect(
                routers[hop].name,
                routers[hop + 1].name,
                cfg.bottleneck_bps,
                per_hop_delay,
                queue_ab=queue,
            )
            self.hop_queues.append(queue)
            self.hop_monitors.append(monitor)

        # Per-hop cross-traffic hosts.
        self.cross_senders: List[Host] = []
        self.cross_receivers: List[Host] = []
        for hop in range(n_hops):
            sender = self.topology.add_host(f"xsnd{hop}")
            receiver = self.topology.add_host(f"xrcv{hop}")
            self.topology.connect(
                sender.name, routers[hop].name, cfg.access_bps, cfg.access_delay
            )
            self.topology.connect(
                routers[hop + 1].name, receiver.name, cfg.access_bps, cfg.access_delay
            )
            self.cross_senders.append(sender)
            self.cross_receivers.append(receiver)

        self.probe_sender = self.topology.add_host(self.PROBE_SENDER)
        self.probe_receiver = self.topology.add_host(self.PROBE_RECEIVER)
        self.topology.connect(
            self.PROBE_SENDER, routers[0].name, cfg.access_bps, cfg.access_delay
        )
        self.topology.connect(
            routers[-1].name, self.PROBE_RECEIVER, cfg.access_bps, cfg.access_delay
        )
        self.topology.build_routes()

    # ---------------------------------------------------------- ground truth
    def path_episodes(self, max_gap: float = 0.5) -> List[LossEpisode]:
        """Union of per-hop loss episodes (end-to-end congestion state)."""
        per_hop = [
            episodes_from_monitor(monitor, max_gap=max_gap)
            for monitor in self.hop_monitors
        ]
        return merge_episode_lists(per_hop)

    @property
    def total_drops(self) -> int:
        return sum(monitor.total_drops for monitor in self.hop_monitors)

    @property
    def one_way_propagation(self) -> float:
        """Propagation floor, probe sender to probe receiver."""
        return 2 * self.config.access_delay + self.config.prop_delay
