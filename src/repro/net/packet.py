"""Packets.

A :class:`Packet` models one IP datagram. Headers are not serialized — fields
that a real header would carry (source, destination, protocol demux key,
sequence numbers, timestamps) are plain attributes. ``size`` is the full
on-the-wire size in bytes and is what links and queues account.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

#: Global monotonically increasing packet id source. Per-packet identity is
#: used by the monitors to match ingress/egress observations exactly the way
#: the paper matched DAG traces by header content.
_packet_ids = itertools.count(1)


class Packet:
    """One simulated datagram.

    Parameters
    ----------
    src, dst:
        Node names (strings). Routing is by ``dst``.
    size:
        On-the-wire size in bytes, including all headers.
    protocol:
        Demultiplexing key at the destination host (e.g. ``"udp"``/``"tcp"``).
    port:
        Application demux key within the protocol.
    payload:
        Arbitrary application data. Traffic generators and probe tools attach
        dataclasses/dicts here; the network layers never inspect it.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "protocol",
        "port",
        "payload",
        "flow",
        "created_at",
        "enqueued_at",
        "metadata",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: int,
        protocol: str = "udp",
        port: int = 0,
        payload: Any = None,
        flow: Optional[str] = None,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = size
        self.protocol = protocol
        self.port = port
        self.payload = payload
        #: Flow label for per-flow accounting (defaults to src->dst pair).
        self.flow = flow if flow is not None else f"{src}->{dst}"
        #: Stamped by the sending application (virtual time).
        self.created_at: float = -1.0
        #: Stamped by the queue currently holding the packet.
        self.enqueued_at: float = -1.0
        #: Free-form per-packet annotations (used sparingly; costs memory).
        self.metadata: Optional[Dict[str, Any]] = None

    def note(self, key: str, value: Any) -> None:
        """Attach an annotation, creating the metadata dict lazily."""
        if self.metadata is None:
            self.metadata = {}
        self.metadata[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, {self.size}B, "
            f"{self.protocol}:{self.port}, flow={self.flow!r})"
        )
