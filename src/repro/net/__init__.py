"""Packet-level discrete-event network simulator.

This subpackage is the substrate that replaces the paper's hardware testbed
(Cisco GSR routers, OC3 bottleneck, Endace DAG capture cards). It provides:

* :mod:`repro.net.simulator` — the event loop,
* :mod:`repro.net.packet` — packets,
* :mod:`repro.net.queues` — drop-tail (and RED) byte-limited FIFO queues,
* :mod:`repro.net.link` — serializing transmitters with propagation delay,
* :mod:`repro.net.node` — hosts and routers with static routing,
* :mod:`repro.net.topology` — topology builders, including the dumbbell
  testbed replica of the paper's Figure 3,
* :mod:`repro.net.monitor` — DAG-equivalent lossless queue taps used to
  establish ground truth,
* :mod:`repro.net.faults` — deterministic, composable fault injection
  (drop, bursty loss, reordering, duplication, flaps, collector outages).
"""

from repro.net.simulator import Simulator
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, REDQueue
from repro.net.link import Link
from repro.net.node import Host, Router, Node
from repro.net.topology import Topology, DumbbellTestbed
from repro.net.multihop import MultiHopTestbed
from repro.net.monitor import QueueMonitor, QueueSampler
from repro.net.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    FaultStats,
    resolve_fault_profile,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FaultStats",
    "resolve_fault_profile",
    "Simulator",
    "Packet",
    "DropTailQueue",
    "REDQueue",
    "Link",
    "Host",
    "Router",
    "Node",
    "Topology",
    "DumbbellTestbed",
    "MultiHopTestbed",
    "QueueMonitor",
    "QueueSampler",
]
