"""Topology construction.

:class:`Topology` is a small convenience layer over nodes and links: declare
nodes, declare (bidirectional) connections, then call :meth:`build_routes`
to install shortest-path static routes everywhere.

:class:`DumbbellTestbed` reproduces the paper's Figure 3 testbed: traffic
generator hosts and probe hosts on the left, receivers on the right, an
aggregation router on each side, and a single bottleneck link between them
whose output queue is where all loss episodes occur. Ground-truth taps
(:class:`repro.net.monitor.QueueMonitor`) attach to that queue.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.config import TestbedConfig
from repro.errors import ConfigurationError, RoutingError
from repro.net.link import Link
from repro.net.monitor import QueueMonitor, QueueSampler
from repro.net.node import Host, Node, Router
from repro.net.queues import DropTailQueue, REDQueue
from repro.net.simulator import Simulator


class Topology:
    """A set of nodes plus helpers to wire links and compute routes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self._edges: List[Tuple[str, str]] = []

    # ------------------------------------------------------------- declaration
    def add_host(self, name: str) -> Host:
        return self._add(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._add(Router(self.sim, name))

    def _add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay: float,
        queue_ab: Optional[DropTailQueue] = None,
        queue_ba: Optional[DropTailQueue] = None,
    ) -> Tuple[Link, Link]:
        """Create a bidirectional connection as two independent links."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        link_ab = Link(self.sim, bandwidth_bps, delay, queue_ab, name=f"{a}->{b}")
        link_ba = Link(self.sim, bandwidth_bps, delay, queue_ba, name=f"{b}->{a}")
        link_ab.connect(node_b.receive)
        link_ba.connect(node_a.receive)
        node_a.add_link(b, link_ab)
        node_b.add_link(a, link_ba)
        self._edges.append((a, b))
        return link_ab, link_ba

    # ----------------------------------------------------------------- routing
    def build_routes(self) -> None:
        """Install shortest-path (hop count) routes on every node via BFS."""
        adjacency: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for a, b in self._edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        for source in self.nodes:
            parents = self._bfs(source, adjacency)
            for destination in self.nodes:
                if destination == source:
                    continue
                next_hop = self._first_hop(source, destination, parents)
                if next_hop is None:
                    raise RoutingError(
                        f"no path from {source!r} to {destination!r}"
                    )
                self.nodes[source].add_route(destination, next_hop)

    @staticmethod
    def _bfs(source: str, adjacency: Dict[str, List[str]]) -> Dict[str, str]:
        parents: Dict[str, str] = {}
        frontier = deque([source])
        seen = {source}
        while frontier:
            node = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = node
                    frontier.append(neighbor)
        return parents

    @staticmethod
    def _first_hop(
        source: str, destination: str, parents: Dict[str, str]
    ) -> Optional[str]:
        if destination not in parents:
            return None
        node = destination
        while parents[node] != source:
            node = parents[node]
        return node


class DumbbellTestbed:
    """Replica of the paper's Figure 3 testbed (scaled; see DESIGN.md).

    Layout::

        tsnd0..k  \\                          / trcv0..k
        probesnd --- routerL ===bottleneck=== routerR --- probercv

    The single ``routerL -> routerR`` link is the bottleneck where all loss
    episodes occur. Its output queue carries the ground-truth monitor (the
    DAG-card equivalent) and a periodic queue-length sampler for the Fig. 4-6
    time series.
    """

    PROBE_SENDER = "probesnd"
    PROBE_RECEIVER = "probercv"

    def __init__(
        self,
        sim: Simulator,
        config: Optional[TestbedConfig] = None,
        sample_interval: Optional[float] = None,
    ):
        self.sim = sim
        self.config = config if config is not None else TestbedConfig()
        cfg = self.config
        self.topology = Topology(sim)

        routerL = self.topology.add_router("routerL")
        routerR = self.topology.add_router("routerR")

        # Bottleneck queue: byte capacity = buffer_time x line rate, the way
        # the paper configured "approximately 100 milliseconds of packets".
        if cfg.red:
            bottleneck_queue: DropTailQueue = REDQueue(
                cfg.buffer_bytes, "bottleneck", rng=sim.rng("red")
            )
        else:
            bottleneck_queue = DropTailQueue(cfg.buffer_bytes, "bottleneck")
        self.bottleneck_queue = bottleneck_queue

        # Reverse path has a generous (non-bottleneck) queue so ACK traffic
        # never experiences loss, matching the testbed's uncongested reverse.
        self.forward_link, self.reverse_link = self.topology.connect(
            "routerL",
            "routerR",
            cfg.bottleneck_bps,
            cfg.prop_delay,
            queue_ab=bottleneck_queue,
        )

        # High-water mark for episode delimitation: the paper used "within
        # 10 milliseconds of the maximum" on a 100 ms buffer, i.e. 90%.
        self.monitor = QueueMonitor(
            sim,
            name="bottleneck",
            high_water_bytes=int(0.9 * cfg.buffer_bytes),
        )
        bottleneck_queue.attach(self.monitor)
        if sample_interval is not None:
            self.sampler: Optional[QueueSampler] = QueueSampler(
                sim, bottleneck_queue, cfg.bottleneck_bps, sample_interval
            )
        else:
            self.sampler = None

        # Traffic host pairs.
        self.traffic_senders: List[Host] = []
        self.traffic_receivers: List[Host] = []
        for i in range(cfg.n_traffic_pairs):
            sender = self.topology.add_host(f"tsnd{i}")
            receiver = self.topology.add_host(f"trcv{i}")
            self.topology.connect(
                sender.name, "routerL", cfg.access_bps, cfg.access_delay
            )
            self.topology.connect(
                "routerR", receiver.name, cfg.access_bps, cfg.access_delay
            )
            self.traffic_senders.append(sender)
            self.traffic_receivers.append(receiver)

        # Dedicated probe hosts (like the badabing sender/receiver machines).
        self.probe_sender = self.topology.add_host(self.PROBE_SENDER)
        self.probe_receiver = self.topology.add_host(self.PROBE_RECEIVER)
        self.topology.connect(
            self.PROBE_SENDER, "routerL", cfg.access_bps, cfg.access_delay
        )
        self.topology.connect(
            "routerR", self.PROBE_RECEIVER, cfg.access_bps, cfg.access_delay
        )

        self.topology.build_routes()

    # ------------------------------------------------------------ convenience
    @property
    def one_way_propagation(self) -> float:
        """Propagation (no queueing/serialization) sender -> receiver."""
        cfg = self.config
        return 2 * cfg.access_delay + cfg.prop_delay

    def host(self, name: str) -> Host:
        node = self.topology.nodes[name]
        if not isinstance(node, Host):
            raise ConfigurationError(f"{name!r} is not a host")
        return node
