"""Nodes: hosts and routers.

A :class:`Node` owns a set of outgoing :class:`~repro.net.link.Link`\\ s keyed
by neighbour name and a static routing table mapping destination node names
to next-hop neighbours. :class:`Router` forwards; :class:`Host` additionally
demultiplexes arriving packets to registered applications by
``(protocol, port)``.

Routing tables are normally filled in by
:class:`repro.net.topology.Topology`, which computes shortest paths over the
declared links.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import RoutingError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator

#: Application delivery callback: (packet) -> None.
AppReceiver = Callable[[Packet], None]

#: Inbound admission filter: (packet) -> keep? False silently discards.
InboundFilter = Callable[[Packet], bool]


class Node:
    """Base class: forwarding element with static routes."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: Outgoing links keyed by neighbour node name.
        self.links: Dict[str, Link] = {}
        #: Destination node name -> next-hop neighbour name.
        self.routes: Dict[str, str] = {}
        #: Packets that arrived with no route (should stay zero).
        self.unroutable = 0

    # ----------------------------------------------------------------- wiring
    def add_link(self, neighbor: str, link: Link) -> None:
        """Register the outgoing link towards ``neighbor``."""
        self.links[neighbor] = link

    def add_route(self, destination: str, next_hop: str) -> None:
        """Install a static route."""
        if next_hop not in self.links:
            raise RoutingError(
                f"{self.name}: next hop {next_hop!r} has no attached link"
            )
        self.routes[destination] = next_hop

    # ------------------------------------------------------------- forwarding
    def receive(self, packet: Packet) -> None:
        """Packet arrived from a link; hosts override to deliver locally."""
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Send ``packet`` towards its destination via the routing table."""
        next_hop = self.routes.get(packet.dst)
        if next_hop is None:
            self.unroutable += 1
            raise RoutingError(
                f"{self.name}: no route to {packet.dst!r} (packet {packet.pid})"
            )
        self.links[next_hop].send(packet)


class Router(Node):
    """A pure forwarding node. Exists for readability of topology code."""


class Host(Node):
    """An end host: applications attach here and receive local deliveries."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._apps: Dict[Tuple[str, int], AppReceiver] = {}
        #: Local deliveries that found no bound application.
        self.undeliverable = 0
        #: Optional admission filter (e.g. a fault injector's collector
        #: outage); local deliveries it rejects are counted here.
        self._inbound_filter: Optional[InboundFilter] = None
        self.filtered_inbound = 0

    def set_inbound_filter(self, filter_fn: Optional[InboundFilter]) -> None:
        """Install (or clear, with None) an inbound admission filter."""
        self._inbound_filter = filter_fn

    def bind(self, protocol: str, port: int, receiver: AppReceiver) -> None:
        """Register an application receive callback for (protocol, port)."""
        key = (protocol, port)
        if key in self._apps:
            raise RoutingError(f"{self.name}: {key} already bound")
        self._apps[key] = receiver

    def unbind(self, protocol: str, port: int) -> None:
        """Remove a binding (used by finite flows when they complete)."""
        self._apps.pop((protocol, port), None)

    def receive(self, packet: Packet) -> None:
        if packet.dst != self.name:
            self.forward(packet)
            return
        if self._inbound_filter is not None and not self._inbound_filter(packet):
            self.filtered_inbound += 1
            return
        receiver = self._apps.get((packet.protocol, packet.port))
        if receiver is None:
            self.undeliverable += 1
            return
        receiver(packet)

    def send(self, packet: Packet) -> None:
        """Entry point for local applications: stamp and forward."""
        packet.created_at = self.sim.now
        if packet.dst == self.name:  # loopback, mostly for tests
            self.receive(packet)
            return
        self.forward(packet)
