"""Links: serializing transmitters plus propagation delay.

A :class:`Link` is unidirectional. It owns an output :class:`DropTailQueue`
(or RED variant), drains it at the configured bandwidth (one packet at a
time — store-and-forward), and delivers each packet to the remote endpoint
after the propagation delay. Bidirectional connectivity is modelled as two
independent links, exactly as the paper's testbed used independent forward
and reverse paths.

The 50 ms hardware propagation-delay emulator of the testbed maps to the
``delay`` parameter here.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Callable, Optional

from repro import profiling as _profiling
from repro.profiling import STAGE_BUCKETS
from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator
from repro.units import transmission_time

#: Receiver callback signature: (packet) -> None.
Receiver = Callable[[Packet], None]

#: Stride for sampled queue.service timing under an active profiler: one
#: in this many services pays the two clock reads and represents the
#: whole stride in the stage stats. Fixed (never adaptive) so profiled
#: call counts are a pure function of the event sequence.
SERVICE_SAMPLE_STRIDE = 4


class Link:
    """Unidirectional link with serialization and propagation delay.

    Parameters
    ----------
    sim:
        The simulator driving this link.
    bandwidth_bps:
        Serialization rate in bits/second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Output queue feeding the transmitter. If omitted, an effectively
        unlimited drop-tail queue is created (useful for access links that
        should never be the bottleneck).
    name:
        Label for monitor output and debugging.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay: float,
        queue: Optional[DropTailQueue] = None,
        name: str = "link",
        random_loss: float = 0.0,
    ):
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        if not 0 <= random_loss < 1:
            raise ConfigurationError(f"random_loss must be in [0, 1), got {random_loss}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(1 << 40, f"{name}-q")
        self.name = name
        self._receiver: Optional[Receiver] = None
        self._busy = False
        #: Total packets/bytes that completed transmission on this link.
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        #: Per-packet random loss probability applied after transmission —
        #: models corruption / NIC buffer drops that are *uncorrelated*
        #: with queueing, the noise §6.1's OWD_max filtering is meant to
        #: tolerate. Congestion loss always comes from the queue instead.
        self.random_loss = random_loss
        self.randomly_lost = 0
        #: Leaf accumulator for queue.service timings (repro bench only);
        #: re-fetched whenever the active profiler changes or folds it.
        self._service_acc: Optional[list] = None
        self._service_prof = None
        self._service_countdown = 1
        self._loss_rng = sim.rng(f"linkloss-{name}") if random_loss > 0 else None
        #: Optional fault injector (see :mod:`repro.net.faults`); None means
        #: the delivery path is exactly the clean store-and-forward path.
        self._fault_injector = None
        # Observability: aggregate counters are pulled from the raw slots
        # above at snapshot time, so the per-packet path stays untouched.
        if sim.metrics.enabled:
            self.queue.bind_metrics(sim.metrics)
            sim.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        labels = {"link": self.name}
        registry.counter("link.tx_packets", **labels).value = self.transmitted_packets
        registry.counter("link.tx_bytes", **labels).value = self.transmitted_bytes
        if self.randomly_lost:
            registry.counter("link.random_loss", **labels).value = self.randomly_lost

    # ----------------------------------------------------------------- wiring
    def connect(self, receiver: Receiver) -> None:
        """Set the far-end delivery callback (a node's receive method)."""
        self._receiver = receiver

    def set_fault_injector(self, injector) -> None:
        """Route deliveries through a :class:`~repro.net.faults.FaultInjector`.

        Pass None to restore the clean delivery path.
        """
        self._fault_injector = injector

    def set_random_loss(self, probability: float) -> None:
        """Enable/disable uncorrelated per-packet loss on this link."""
        if not 0 <= probability < 1:
            raise ConfigurationError(
                f"random_loss must be in [0, 1), got {probability}"
            )
        self.random_loss = probability
        if probability > 0 and self._loss_rng is None:
            self._loss_rng = self.sim.rng(f"linkloss-{self.name}")
        if probability == 0:
            self._loss_rng = None

    # ------------------------------------------------------------------ send
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the output queue; start transmitting if idle.

        Returns True if the packet was queued, False if it was dropped.
        """
        accepted = self.queue.offer(self.sim.now, packet)
        if accepted and not self._busy:
            self._start_next()
        return accepted

    # -------------------------------------------------------------- internals
    def _start_next(self) -> None:
        # Per-packet hot path: one None check when no profiler is active
        # (the default everywhere outside `repro bench`). When one is,
        # deterministic stride sampling keeps the profiled run inside the
        # 10% overhead budget: every SERVICE_SAMPLE_STRIDE-th service is
        # timed (two clock reads) and stands in for its whole stride,
        # accumulated inline into a preregistered leaf list — index ops
        # only, no method call per packet. Queue services are homogeneous
        # (a deque pop plus drop bookkeeping), so the stride estimate
        # converges fast; the stride is fixed, so profiled stage *counts*
        # stay deterministic and identical between serial and parallel
        # sweeps of the same cells.
        prof = _profiling.ACTIVE
        if prof is None:
            packet = self.queue.take(self.sim.now)
        else:
            countdown = self._service_countdown - 1
            if countdown > 0:
                self._service_countdown = countdown
                packet = self.queue.take(self.sim.now)
            else:
                self._service_countdown = SERVICE_SAMPLE_STRIDE
                acc = self._service_acc
                if acc is None or acc[4] or self._service_prof is not prof:
                    acc = self._service_acc = prof.leaf("queue.service")
                    self._service_prof = prof
                service_start = perf_counter()
                packet = self.queue.take(self.sim.now)
                elapsed = perf_counter() - service_start
                acc[0] += SERVICE_SAMPLE_STRIDE
                acc[1] += elapsed * SERVICE_SAMPLE_STRIDE
                if elapsed > acc[2]:
                    acc[2] = elapsed
                # Manual bucket probe, cheapest-first: queue service is
                # almost always in the 1-10us bins (STAGE_BUCKETS[0:2]).
                if elapsed <= 1e-05:
                    acc[3][0 if elapsed <= 1e-06 else 1] += SERVICE_SAMPLE_STRIDE
                else:
                    acc[3][bisect_left(STAGE_BUCKETS, elapsed)] += (
                        SERVICE_SAMPLE_STRIDE
                    )
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = transmission_time(packet.size, self.bandwidth_bps)
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size
        # Propagation: deliver to the far end `delay` seconds from now. The
        # transmitter is free immediately (pipelining on the wire).
        if self._loss_rng is not None and self._loss_rng.random() < self.random_loss:
            self.randomly_lost += 1
        elif self._receiver is not None:
            if self._fault_injector is not None:
                self._fault_injector.deliver(packet, self._receiver, self.delay)
            else:
                self.sim.schedule(self.delay, self._receiver, packet)
        self._start_next()

    @property
    def utilization_hint(self) -> float:
        """Bytes transmitted so far as a fraction of capacity * elapsed time.

        Only meaningful after the simulation has run for a while; used by
        scenario calibration tests.
        """
        if self.sim.now <= 0:
            return 0.0
        return (self.transmitted_bytes * 8) / (self.bandwidth_bps * self.sim.now)
